"""The synthetic "SUSE 7.2 + glibc 2.2" environment.

Builds everything the phase-1 front end consumes: the shared library's
symbol table, the header corpus under a simulated ``/usr/include``,
and the manual page corpus — seeded with exactly the defect rates the
paper measured (section 3.1/3.2):

* more than 34% of global functions are internal (underscore names);
* only 51.1% of external functions have a manual page;
* 1.2% of manual pages list no header files;
* 7.7% list the wrong headers (none of them, nor anything they
  include, declares the prototype);
* 96.0% of functions can be resolved to a prototype at all — the
  remaining 4% are declared in no header (deprecated/internal-only).

The environment contains the 90+ modeled libc functions plus a large
population of fictitious-but-realistic functions, so the statistics
are computed over a glibc-scale surface rather than a toy one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.headers.corpus import (
    HeaderCorpus,
    NOISE_MACROS,
    STRUCT_BODIES,
    build_header,
    types_header,
)
from repro.libc.catalog import CATALOG
from repro.manpages.corpus import ManPageCorpus, render_page
from repro.syslib.symbols import SymbolTable

#: Deterministic seed: the corpus is part of the experiment setup.
CORPUS_SEED = 20020623  # DSN'02 took place June 23-26, 2002

#: Target defect rates (the paper's measurements).
MAN_COVERAGE = 0.511
MAN_NO_HEADERS = 0.012
MAN_WRONG_HEADERS = 0.077
NOT_IN_ANY_HEADER = 0.040
INTERNAL_TARGET = 0.349

#: Total external functions in the synthetic library.  305 puts the
#: integer defect counts closest to the paper's percentages: 156 man
#: pages (51.1%), 12 wrong-header pages (7.7%), 2 header-less pages
#: (1.3%), 12 functions declared nowhere (96.1% found).
EXTERNAL_TOTAL = 305

_FIRST = (
    "xdr", "svc", "clnt", "auth", "key", "netname", "rpc", "nis", "rcmd",
    "ruserok", "hcreate", "hsearch", "twalk", "tfind", "lfind", "lsearch",
    "ecvt", "fcvt", "gcvt", "envz", "argz", "fts", "glob", "regex", "wordexp",
    "catopen", "catgets", "iconv", "nl_langinfo", "mblen", "mbtowc", "wctomb",
    "swab", "ffs", "bcopy", "bzero", "index", "rindex", "mktemp", "mkstemp",
    "sigset", "siginterrupt", "ualarm", "usleep", "getw", "putw", "getpass",
)
_SECOND = (
    "encode", "decode", "create", "destroy", "register", "lookup", "next",
    "prev", "open", "close", "read", "write", "update", "query", "walk",
    "entry", "init", "free", "run", "stat", "name", "value", "long",
)
_RETURNS = ("int", "long", "char *", "void *", "unsigned int", "void", "double")
_PARAMS = (
    "int flags",
    "const char *name",
    "char *buf",
    "size_t len",
    "void *data",
    "long offset",
    "unsigned int mode",
    "FILE *stream",
    "double value",
)

_FICTITIOUS_HEADERS = (
    "rpc/xdr.h",
    "rpc/svc.h",
    "search.h",
    "argz.h",
    "fts.h",
    "glob.h",
    "regex.h",
    "wordexp.h",
    "nl_types.h",
    "iconv.h",
    "misc/compat.h",
    "bits/libc-extras.h",
)

_INTERNAL_PREFIXES = (
    "_IO_",
    "__libc_",
    "__GI_",
    "_dl_",
    "__strtol_internal_",
    "__underflow_",
    "__overflow_",
    "__res_",
    "__nss_",
    "_nl_",
)


@dataclass(frozen=True)
class GroundTruth:
    """Where one function is *really* declared (for tests)."""

    name: str
    prototype: str
    headers: tuple[str, ...]  # declaring headers; empty = nowhere
    has_man_page: bool
    man_lists_headers: bool
    man_headers_correct: bool


@dataclass
class SyntheticEnvironment:
    """Symbol table + /usr/include + man pages + ground truth."""

    symbol_table: SymbolTable
    headers: HeaderCorpus
    man_pages: ManPageCorpus
    ground_truth: dict[str, GroundTruth] = field(default_factory=dict)

    @property
    def external_names(self) -> list[str]:
        return sorted(self.ground_truth)


def _fictitious_functions(rng: random.Random, count: int) -> list[tuple[str, str]]:
    """Deterministic (name, prototype) pairs for the filler surface."""
    names: list[str] = []
    seen: set[str] = set()
    while len(names) < count:
        name = f"{rng.choice(_FIRST)}_{rng.choice(_SECOND)}"
        if name in seen:
            name = f"{name}{len(names) % 7}"
        if name in seen:
            continue
        seen.add(name)
        names.append(name)
    out = []
    for name in names:
        return_type = rng.choice(_RETURNS)
        params = ", ".join(
            rng.sample(_PARAMS, rng.randint(1, 3))
        )
        star = "" if return_type.endswith("*") else " "
        out.append((name, f"{return_type}{star}{name}({params});"))
    return out


def build_environment() -> SyntheticEnvironment:
    """Construct the full deterministic environment."""
    rng = random.Random(CORPUS_SEED)

    # ------------------------------------------------------------------
    # external function population: modeled + fictitious
    # ------------------------------------------------------------------
    modeled = [(spec.name, spec.prototype, spec.headers) for spec in CATALOG]
    fictitious = _fictitious_functions(rng, EXTERNAL_TOTAL - len(modeled))
    fict_with_headers = [
        (name, proto, (rng.choice(_FICTITIOUS_HEADERS),))
        for name, proto in fictitious
    ]

    # Select the "declared nowhere" population among the fictitious
    # functions (the modeled ones must all be extractable).
    nowhere_count = round(NOT_IN_ANY_HEADER * EXTERNAL_TOTAL)
    nowhere = {name for name, _, _ in rng.sample(fict_with_headers, nowhere_count)}

    # ------------------------------------------------------------------
    # header corpus
    # ------------------------------------------------------------------
    corpus = HeaderCorpus()
    corpus.add("sys/types.h", types_header())
    by_header: dict[str, list[str]] = {}
    for name, prototype, headers in modeled + fict_with_headers:
        if name in nowhere:
            continue
        for header in headers:
            by_header.setdefault(header, []).append(prototype)
    # stdio.h's FILE typedef is needed by headers that mention FILE.
    extra_includes = {
        "dirent.h": ("stdio.h",),
        "rpc/svc.h": ("rpc/xdr.h",),
        "misc/compat.h": ("stdio.h",),
    }
    for header, prototypes in sorted(by_header.items()):
        needs_file = any("FILE" in p for p in prototypes) and header != "stdio.h"
        includes = list(extra_includes.get(header, ()))
        if needs_file and "stdio.h" not in includes:
            includes.append("stdio.h")
        corpus.add(
            header,
            build_header(
                header,
                prototypes,
                extra_includes=includes,
                noise_macros=NOISE_MACROS.get(header, ()),
                struct_bodies=(STRUCT_BODIES[header],) if header in STRUCT_BODIES else (),
            ),
        )
    # A couple of prototype-free headers for realism.
    corpus.add("features.h", "#ifndef _FEATURES_H\n#define _FEATURES_H 1\n#endif\n")
    corpus.add(
        "sys/stat.h",
        corpus.read("sys/stat.h")
        or build_header("sys/stat.h", by_header.get("sys/stat.h", [])),
    )

    # ------------------------------------------------------------------
    # man page corpus with seeded defects
    # ------------------------------------------------------------------
    man = ManPageCorpus()
    everything = modeled + fict_with_headers
    # Functions declared nowhere are deprecated internals; those have
    # no pages either (a page with an empty SYNOPSIS would otherwise
    # distort the "lists no headers" statistic).
    pageable = [entry for entry in everything if entry[0] not in nowhere]
    with_pages = rng.sample(pageable, round(MAN_COVERAGE * len(everything)))
    paged_names = {name for name, _, _ in with_pages}
    no_header_pages = {
        name for name, _, _ in rng.sample(with_pages, max(1, round(MAN_NO_HEADERS * len(with_pages))))
    }
    wrong_header_candidates = [
        entry for entry in with_pages
        if entry[0] not in no_header_pages and entry[0] not in nowhere
    ]
    wrong_header_pages = {
        name
        for name, _, _ in rng.sample(
            wrong_header_candidates, round(MAN_WRONG_HEADERS * len(with_pages))
        )
    }

    truth: dict[str, GroundTruth] = {}
    for name, prototype, headers in everything:
        declared = () if name in nowhere else tuple(headers)
        has_page = name in paged_names
        lists = has_page and name not in no_header_pages
        correct = lists and name not in wrong_header_pages
        if has_page:
            if not lists:
                page_headers: tuple[str, ...] = ()
            elif name in wrong_header_pages:
                # Headers that do NOT declare the prototype (and do not
                # include anything that does).
                page_headers = ("features.h",)
            else:
                page_headers = declared
            man.add(name, render_page(name, page_headers, prototype))
        truth[name] = GroundTruth(
            name=name,
            prototype=prototype,
            headers=declared,
            has_man_page=has_page,
            man_lists_headers=lists,
            man_headers_correct=correct,
        )

    # ------------------------------------------------------------------
    # symbol table: externals + enough internals for the 34% figure
    # ------------------------------------------------------------------
    internal_count = round(
        INTERNAL_TARGET / (1 - INTERNAL_TARGET) * EXTERNAL_TOTAL
    )
    internals = []
    index = 0
    while len(internals) < internal_count:
        prefix = _INTERNAL_PREFIXES[index % len(_INTERNAL_PREFIXES)]
        internals.append(f"{prefix}impl_{index:03d}")
        index += 1
    table = SymbolTable("libc.so.6")
    for name, _, _ in everything:
        table.add(name)
    for name in internals:
        table.add(name)

    return SyntheticEnvironment(
        symbol_table=table,
        headers=corpus,
        man_pages=man,
        ground_truth=truth,
    )
