"""The HEALERS extensible type system ``(T, <=)``.

Fundamental and unified type instances, the subtype rules of the
paper's Figures 3 and 4 (plus the additional families used by our test
case generators), finite lattice instantiation, and robust argument
type computation for single arguments and type vectors.
"""

from repro.typelattice import registry
from repro.typelattice.instances import TypeInstance, parse_rendered
from repro.typelattice.lattice import Lattice, build_instances
from repro.typelattice.registry import (
    AUTO_CHECKABLE,
    DIR_SIZE,
    FAMILY_TOPS,
    FILE_SIZE,
    LATTICE_VERSION,
    SEMI_AUTO_CHECKABLE,
)
from repro.typelattice.robust import (
    CheckablePredicate,
    Observation,
    RobustType,
    TestResult,
    compute_robust_type,
)
from repro.typelattice.rules import DIRECT_RULES, is_direct_subtype
from repro.typelattice.vectors import (
    TypeVectorOrder,
    VectorObservation,
    compute_robust_vector,
)

__all__ = [
    "AUTO_CHECKABLE",
    "CheckablePredicate",
    "DIRECT_RULES",
    "DIR_SIZE",
    "FAMILY_TOPS",
    "FILE_SIZE",
    "LATTICE_VERSION",
    "Lattice",
    "Observation",
    "RobustType",
    "SEMI_AUTO_CHECKABLE",
    "TestResult",
    "TypeInstance",
    "TypeVectorOrder",
    "VectorObservation",
    "build_instances",
    "compute_robust_type",
    "compute_robust_vector",
    "is_direct_subtype",
    "parse_rendered",
    "registry",
]
