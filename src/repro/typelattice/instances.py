"""Type instances for the HEALERS extensible type system.

The paper's type system (section 4.2) is a partially ordered set
``(T, <=)`` whose elements are *types*; each type denotes a set of
values.  Types come in two kinds:

* **fundamental** types — produced by test case generators; their value
  sets are pairwise disjoint;
* **unified** types — unions of the value sets of their strict
  subtypes; the wrapper library provides a checking function for each
  unified type.

Many types are parameterized by a size (``R_ARRAY[44]`` is "pointer to
at least 44 readable bytes").  A :class:`TypeInstance` is one concrete
type, possibly carrying its parameter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TypeInstance:
    """One concrete type in the lattice.

    Attributes:
        name: template name, e.g. ``R_ARRAY_NULL`` or ``NULL``.
        param: size parameter for parameterized templates, else None.
        fundamental: True for fundamental types (generator-produced,
            disjoint value sets), False for unified types.
        family: grouping tag used for diagnostics ("ptr", "file",
            "dir", "string", "fd", "int", "size", "real", "funcptr").
    """

    name: str
    param: Optional[int] = None
    fundamental: bool = False
    family: str = "ptr"

    def render(self) -> str:
        """Paper notation, e.g. ``R_ARRAY_NULL[44]``."""
        if self.param is not None:
            return f"{self.name}[{self.param}]"
        return self.name

    def __str__(self) -> str:
        return self.render()

    @property
    def parameterized(self) -> bool:
        return self.param is not None

    def with_param(self, param: int) -> "TypeInstance":
        return TypeInstance(self.name, param, self.fundamental, self.family)


_RENDERED = re.compile(r"^([A-Z_][A-Z0-9_]*)(?:\[(\d+)\])?$")


def parse_rendered(text: str) -> tuple[str, Optional[int]]:
    """Parse ``"R_ARRAY_NULL[44]"`` into ``("R_ARRAY_NULL", 44)``.

    Used when reading function declarations back from their XML form
    (the paper's Figure 2 notation).
    """
    match = _RENDERED.match(text.strip())
    if not match:
        raise ValueError(f"not a type instance rendering: {text!r}")
    name, param = match.groups()
    return name, int(param) if param is not None else None
