"""The instantiated type lattice and its partial order.

A :class:`Lattice` holds a *finite* set of type instances (templates
instantiated at the size parameters that actually occurred during fault
injection) and provides the subtype relation as the reflexive-transitive
closure of the direct rules — the concrete form of the paper's
``(T, <=)``.

The closure is computed once over the instance DAG (networkx), so all
robust-type queries are dictionary lookups.
"""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.typelattice import registry
from repro.typelattice.instances import TypeInstance
from repro.typelattice.rules import DIRECT_RULES, is_direct_subtype

#: Templates that take a size parameter.
PARAMETERIZED_TEMPLATES = {
    "RONLY_FIXED": True,
    "RW_FIXED": True,
    "WONLY_FIXED": True,
    "R_ARRAY": False,
    "W_ARRAY": False,
    "RW_ARRAY": False,
    "R_ARRAY_NULL": False,
    "W_ARRAY_NULL": False,
    "RW_ARRAY_NULL": False,
}

#: Every non-parameterized instance in the registry.
_FIXED_INSTANCES: tuple[TypeInstance, ...] = (
    registry.NULL,
    registry.INVALID,
    registry.UNCONSTRAINED,
    registry.RONLY_FILE,
    registry.RW_FILE,
    registry.WONLY_FILE,
    registry.CORRUPT_FILE,
    registry.STALE_FILE,
    registry.R_FILE,
    registry.W_FILE,
    registry.OPEN_FILE,
    registry.OPEN_FILE_NULL,
    registry.OPEN_DIR,
    registry.CORRUPT_DIR,
    registry.STALE_DIR,
    registry.OPEN_DIR_NULL,
    registry.STRING_RO,
    registry.STRING_RW,
    registry.VALID_MODE,
    registry.VALID_FORMAT,
    registry.CSTRING,
    registry.CSTRING_NULL,
    registry.WRITABLE_STRING,
    registry.WRITABLE_STRING_NULL,
    registry.MODE_STRING,
    registry.FORMAT_STRING,
    registry.FD_RONLY,
    registry.FD_RW,
    registry.FD_WONLY,
    registry.FD_CLOSED,
    registry.FD_NEGATIVE,
    registry.FD_HUGE,
    registry.READABLE_FD,
    registry.WRITABLE_FD,
    registry.OPEN_FD,
    registry.ANY_FD,
    registry.INT_BIG_NEG,
    registry.INT_SMALL_NEG,
    registry.INT_ZERO,
    registry.INT_SMALL_POS,
    registry.INT_BIG_POS,
    registry.CHAR_RANGE,
    registry.INT_NONNEG,
    registry.INT_NONPOS,
    registry.ANY_INT,
    registry.SIZE_ZERO,
    registry.SIZE_SMALL,
    registry.SIZE_HUGE,
    registry.REASONABLE_SIZE,
    registry.ANY_SIZE,
    registry.REAL_NEG,
    registry.REAL_ZERO,
    registry.REAL_POS,
    registry.REAL_NAN,
    registry.REAL_INF,
    registry.FINITE_REAL,
    registry.ANY_REAL,
    registry.VALID_FUNCPTR,
    registry.FUNCPTR,
    registry.FUNCPTR_NULL,
)


def build_instances(size_pool: Iterable[int]) -> list[TypeInstance]:
    """All registry instances, with parameterized templates
    instantiated at every size in ``size_pool``.

    The pool normally contains the buffer sizes observed during fault
    injection for one argument; the lattice over these instances is
    what the robust-type computation searches.
    """
    sizes = sorted(set(size_pool))
    instances: list[TypeInstance] = list(_FIXED_INSTANCES)
    instances.extend(registry.EXTENSION_INSTANCES)
    for name, fundamental in PARAMETERIZED_TEMPLATES.items():
        for size in sizes:
            instances.append(
                TypeInstance(name, size, fundamental=fundamental, family="ptr")
            )
    return instances


#: Memo for :meth:`Lattice.for_sizes`; bounded so pathological size
#: diversity cannot grow memory without limit.
_LATTICE_CACHE: dict[tuple, "Lattice"] = {}
_LATTICE_CACHE_LIMIT = 64


class Lattice:
    """Finite instantiation of ``(T, <=)`` with precomputed closure."""

    def __init__(self, instances: Iterable[TypeInstance]) -> None:
        self.instances: list[TypeInstance] = list(dict.fromkeys(instances))
        graph = nx.DiGraph()
        graph.add_nodes_from(self.instances)
        for sub in self.instances:
            for sup in self.instances:
                if sub != sup and is_direct_subtype(sub, sup):
                    graph.add_edge(sub, sup)
        self.graph = graph
        # descendants in the edge direction sub -> sup are supertypes.
        self._supertypes: dict[TypeInstance, frozenset[TypeInstance]] = {
            node: frozenset(nx.descendants(graph, node)) for node in graph
        }

    @classmethod
    def for_sizes(cls, size_pool: Iterable[int]) -> "Lattice":
        """Memoized constructor — the injection hot loop's single most
        expensive step.

        A lattice is a pure function of the observed sizes, the
        registered extension instances, and the direct-rule table;
        consecutive injector runs overwhelmingly share size pools, so
        one campaign rebuilds what would otherwise be dozens of
        identical transitive closures.  The key captures every input
        that can change (extensibility tests register/unregister
        instances and rules at runtime), and the cache is bounded.
        """
        sizes = tuple(sorted(set(size_pool)))
        key = (
            sizes,
            tuple(registry.EXTENSION_INSTANCES),
            tuple(sorted((edge, id(rule)) for edge, rule in DIRECT_RULES.items())),
        )
        cached = _LATTICE_CACHE.get(key)
        if cached is None:
            if len(_LATTICE_CACHE) >= _LATTICE_CACHE_LIMIT:
                _LATTICE_CACHE.clear()
            cached = cls(build_instances(sizes))
            _LATTICE_CACHE[key] = cached
        return cached

    # -- order queries ---------------------------------------------------
    def is_subtype(self, sub: TypeInstance, sup: TypeInstance) -> bool:
        """Non-strict: ``sub <= sup``."""
        return sub == sup or sup in self._supertypes.get(sub, frozenset())

    def is_strict_subtype(self, sub: TypeInstance, sup: TypeInstance) -> bool:
        return sub != sup and sup in self._supertypes.get(sub, frozenset())

    def supertypes(self, instance: TypeInstance) -> frozenset[TypeInstance]:
        """All strict supertypes of ``instance`` within the lattice."""
        return self._supertypes.get(instance, frozenset())

    def subtypes(self, instance: TypeInstance) -> frozenset[TypeInstance]:
        return frozenset(
            other for other in self.instances if self.is_strict_subtype(other, instance)
        )

    def contains(self, instance: TypeInstance) -> bool:
        return instance in self._supertypes

    def fundamentals(self) -> list[TypeInstance]:
        return [t for t in self.instances if t.fundamental]

    def unified(self) -> list[TypeInstance]:
        return [t for t in self.instances if not t.fundamental]

    def members_of(
        self, unified: TypeInstance, fundamentals: Iterable[TypeInstance]
    ) -> set[TypeInstance]:
        """The given fundamentals whose value sets lie inside
        ``unified`` (i.e. that are subtypes of it)."""
        return {f for f in fundamentals if self.is_subtype(f, unified)}

    def weakest(self, candidates: Iterable[TypeInstance]) -> list[TypeInstance]:
        """Maximal elements (weakest = largest value sets) among
        ``candidates``."""
        pool = list(candidates)
        return [
            t
            for t in pool
            if not any(self.is_strict_subtype(t, other) for other in pool)
        ]

    def strongest(self, candidates: Iterable[TypeInstance]) -> list[TypeInstance]:
        """Minimal elements among ``candidates``."""
        pool = list(candidates)
        return [
            t
            for t in pool
            if not any(self.is_strict_subtype(other, t) for other in pool)
        ]
