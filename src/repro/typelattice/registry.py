"""The concrete type hierarchies of the reproduction.

Encodes the paper's Figure 3 (fixed size arrays) and Figure 4 (file
pointers) plus the additional families our generators define: DIR
pointers, C strings (including mode and format strings), file
descriptors, integers, sizes, reals and function pointers.

Following section 4.2, extending a hierarchy may force previous
fundamental types to be redefined so that fundamental value sets stay
disjoint.  Our array fundamentals (``*_FIXED[s]``) therefore denote
buffers filled with non-NUL garbage that is neither a valid FILE nor a
valid DIR nor a terminated C string — the string/file/dir fundamentals
carve those values out, exactly as the paper restricts
``RW_FIXED[size]`` to avoid overlapping ``OPEN_FILE``.
"""

from __future__ import annotations

from repro.cdecl.typedefs import STRUCT_SIZES
from repro.typelattice.instances import TypeInstance

FILE_SIZE = STRUCT_SIZES["struct _IO_FILE"]
DIR_SIZE = STRUCT_SIZES["struct __dirstream"]

#: Version stamp of the type hierarchy.  Bump whenever a family is
#: extended or a fundamental type is redefined (section 4.2): cached
#: injection outcomes are keyed on it, so a bump invalidates every
#: cache entry computed under the old lattice.
LATTICE_VERSION = "fig3+fig4/1"

# ----------------------------------------------------------------------
# pointer / fixed-size-array family (paper Figure 3)
# ----------------------------------------------------------------------


def RONLY_FIXED(size: int) -> TypeInstance:
    """Pointers to exactly ``size`` read-only garbage bytes."""
    return TypeInstance("RONLY_FIXED", size, fundamental=True, family="ptr")


def RW_FIXED(size: int) -> TypeInstance:
    """Pointers to exactly ``size`` readable+writable garbage bytes."""
    return TypeInstance("RW_FIXED", size, fundamental=True, family="ptr")


def WONLY_FIXED(size: int) -> TypeInstance:
    """Pointers to exactly ``size`` write-only bytes."""
    return TypeInstance("WONLY_FIXED", size, fundamental=True, family="ptr")


NULL = TypeInstance("NULL", fundamental=True, family="ptr")
INVALID = TypeInstance("INVALID", fundamental=True, family="ptr")
UNCONSTRAINED = TypeInstance("UNCONSTRAINED", family="ptr")


def R_ARRAY(size: int) -> TypeInstance:
    """Pointers to at least ``size`` readable bytes (unified)."""
    return TypeInstance("R_ARRAY", size, family="ptr")


def W_ARRAY(size: int) -> TypeInstance:
    return TypeInstance("W_ARRAY", size, family="ptr")


def RW_ARRAY(size: int) -> TypeInstance:
    return TypeInstance("RW_ARRAY", size, family="ptr")


def R_ARRAY_NULL(size: int) -> TypeInstance:
    return TypeInstance("R_ARRAY_NULL", size, family="ptr")


def W_ARRAY_NULL(size: int) -> TypeInstance:
    return TypeInstance("W_ARRAY_NULL", size, family="ptr")


def RW_ARRAY_NULL(size: int) -> TypeInstance:
    return TypeInstance("RW_ARRAY_NULL", size, family="ptr")


# ----------------------------------------------------------------------
# file pointer family (paper Figure 4)
# ----------------------------------------------------------------------

RONLY_FILE = TypeInstance("RONLY_FILE", fundamental=True, family="file")
RW_FILE = TypeInstance("RW_FILE", fundamental=True, family="file")
WONLY_FILE = TypeInstance("WONLY_FILE", fundamental=True, family="file")
#: A FILE-sized block whose bytes look like a FILE but whose internal
#: buffer pointers are smashed; disjoint from both OPEN_FILE and
#: RW_FIXED[size].  Passes memory checks, crashes stdio.
CORRUPT_FILE = TypeInstance("CORRUPT_FILE", fundamental=True, family="file")
#: A structurally intact FILE whose descriptor is dead: stdio fails
#: gracefully with EBADF instead of crashing.
STALE_FILE = TypeInstance("STALE_FILE", fundamental=True, family="file")
R_FILE = TypeInstance("R_FILE", family="file")
W_FILE = TypeInstance("W_FILE", family="file")
OPEN_FILE = TypeInstance("OPEN_FILE", family="file")
OPEN_FILE_NULL = TypeInstance("OPEN_FILE_NULL", family="file")

# ----------------------------------------------------------------------
# directory stream family (section 5.2: closedir/opendir)
# ----------------------------------------------------------------------

OPEN_DIR = TypeInstance("OPEN_DIR", fundamental=True, family="dir")
CORRUPT_DIR = TypeInstance("CORRUPT_DIR", fundamental=True, family="dir")
#: Intact DIR structure with a dead descriptor (EBADF, no crash).
STALE_DIR = TypeInstance("STALE_DIR", fundamental=True, family="dir")
OPEN_DIR_NULL = TypeInstance("OPEN_DIR_NULL", family="dir")

# ----------------------------------------------------------------------
# C string family
# ----------------------------------------------------------------------

#: NUL-terminated readable (read-only) strings that are not valid mode
#: or format strings.
STRING_RO = TypeInstance("STRING_RO", fundamental=True, family="string")
#: NUL-terminated strings in readable+writable memory.
STRING_RW = TypeInstance("STRING_RW", fundamental=True, family="string")
#: Valid fopen-style mode strings ("r", "w+", "ab", ...).
VALID_MODE = TypeInstance("VALID_MODE", fundamental=True, family="string")
#: printf/strftime-style format strings with sane directives.
VALID_FORMAT = TypeInstance("VALID_FORMAT", fundamental=True, family="string")

CSTRING = TypeInstance("CSTRING", family="string")
CSTRING_NULL = TypeInstance("CSTRING_NULL", family="string")
WRITABLE_STRING = TypeInstance("WRITABLE_STRING", family="string")
WRITABLE_STRING_NULL = TypeInstance("WRITABLE_STRING_NULL", family="string")
MODE_STRING = TypeInstance("MODE_STRING", family="string")
FORMAT_STRING = TypeInstance("FORMAT_STRING", family="string")

# ----------------------------------------------------------------------
# file descriptor family (C type int, but semantically a descriptor)
# ----------------------------------------------------------------------

FD_RONLY = TypeInstance("FD_RONLY", fundamental=True, family="fd")
FD_RW = TypeInstance("FD_RW", fundamental=True, family="fd")
FD_WONLY = TypeInstance("FD_WONLY", fundamental=True, family="fd")
FD_CLOSED = TypeInstance("FD_CLOSED", fundamental=True, family="fd")
FD_NEGATIVE = TypeInstance("FD_NEGATIVE", fundamental=True, family="fd")
FD_HUGE = TypeInstance("FD_HUGE", fundamental=True, family="fd")
READABLE_FD = TypeInstance("READABLE_FD", family="fd")
WRITABLE_FD = TypeInstance("WRITABLE_FD", family="fd")
OPEN_FD = TypeInstance("OPEN_FD", family="fd")
ANY_FD = TypeInstance("ANY_FD", family="fd")

# ----------------------------------------------------------------------
# integer family (non-negative example of section 4.2)
# ----------------------------------------------------------------------

#: The splitting into small/big fundamentals is the paper's own
#: technique for overlapping unified types (section 4.2): CHAR_RANGE
#: (what the ctype table accepts, [-128, 255]) overlaps both the
#: non-negative and non-positive integers, so the fundamentals must be
#: split at the -128/0/255 boundaries to stay disjoint.
INT_BIG_NEG = TypeInstance("INT_BIG_NEG", fundamental=True, family="int")
INT_SMALL_NEG = TypeInstance("INT_SMALL_NEG", fundamental=True, family="int")
INT_ZERO = TypeInstance("INT_ZERO", fundamental=True, family="int")
INT_SMALL_POS = TypeInstance("INT_SMALL_POS", fundamental=True, family="int")
INT_BIG_POS = TypeInstance("INT_BIG_POS", fundamental=True, family="int")
CHAR_RANGE = TypeInstance("CHAR_RANGE", family="int")
INT_NONNEG = TypeInstance("INT_NONNEG", family="int")
INT_NONPOS = TypeInstance("INT_NONPOS", family="int")
ANY_INT = TypeInstance("ANY_INT", family="int")

# ----------------------------------------------------------------------
# size family (size_t arguments)
# ----------------------------------------------------------------------

SIZE_ZERO = TypeInstance("SIZE_ZERO", fundamental=True, family="size")
SIZE_SMALL = TypeInstance("SIZE_SMALL", fundamental=True, family="size")
#: Absurd sizes (e.g. 2**40) that no sane caller passes; copying that
#: many bytes always runs off the end of any real buffer.
SIZE_HUGE = TypeInstance("SIZE_HUGE", fundamental=True, family="size")
REASONABLE_SIZE = TypeInstance("REASONABLE_SIZE", family="size")
ANY_SIZE = TypeInstance("ANY_SIZE", family="size")

# ----------------------------------------------------------------------
# floating point family
# ----------------------------------------------------------------------

REAL_NEG = TypeInstance("REAL_NEG", fundamental=True, family="real")
REAL_ZERO = TypeInstance("REAL_ZERO", fundamental=True, family="real")
REAL_POS = TypeInstance("REAL_POS", fundamental=True, family="real")
REAL_NAN = TypeInstance("REAL_NAN", fundamental=True, family="real")
REAL_INF = TypeInstance("REAL_INF", fundamental=True, family="real")
FINITE_REAL = TypeInstance("FINITE_REAL", family="real")
ANY_REAL = TypeInstance("ANY_REAL", family="real")

# ----------------------------------------------------------------------
# function pointer family (qsort comparators etc.)
# ----------------------------------------------------------------------

VALID_FUNCPTR = TypeInstance("VALID_FUNCPTR", fundamental=True, family="funcptr")
FUNCPTR = TypeInstance("FUNCPTR", family="funcptr")
FUNCPTR_NULL = TypeInstance("FUNCPTR_NULL", family="funcptr")


#: Top element per family: the type whose check always succeeds.  A
#: robust argument type equal to its family top means "no check".
FAMILY_TOPS = {
    "ptr": UNCONSTRAINED,
    "file": UNCONSTRAINED,
    "dir": UNCONSTRAINED,
    "string": UNCONSTRAINED,
    "funcptr": UNCONSTRAINED,
    "fd": ANY_FD,
    "int": ANY_INT,
    "size": ANY_SIZE,
    "real": ANY_REAL,
}

#: Unified types for which the *fully automated* wrapper generator can
#: emit a checking function.  OPEN_DIR is deliberately absent: "POSIX
#: does not define any function to verify that a pointer points to a
#: valid directory structure" — checking it requires the stateful
#: assertions added during manual editing (the semi-auto step).
AUTO_CHECKABLE = frozenset(
    {
        "UNCONSTRAINED",
        "R_ARRAY",
        "W_ARRAY",
        "RW_ARRAY",
        "R_ARRAY_NULL",
        "W_ARRAY_NULL",
        "RW_ARRAY_NULL",
        "NULL",
        "OPEN_FILE",
        "OPEN_FILE_NULL",
        "R_FILE",
        "W_FILE",
        "CSTRING",
        "CSTRING_NULL",
        "WRITABLE_STRING",
        "WRITABLE_STRING_NULL",
        "MODE_STRING",
        "FORMAT_STRING",
        "READABLE_FD",
        "WRITABLE_FD",
        "OPEN_FD",
        "ANY_FD",
        "CHAR_RANGE",
        "INT_NONNEG",
        "INT_NONPOS",
        "ANY_INT",
        "REASONABLE_SIZE",
        "ANY_SIZE",
        "FINITE_REAL",
        "ANY_REAL",
        "FUNCPTR",
        "FUNCPTR_NULL",
    }
)

#: Additional types that become checkable after the manual-editing
#: step adds executable assertions (stateful DIR/FILE tracking).
SEMI_AUTO_CHECKABLE = AUTO_CHECKABLE | frozenset({"OPEN_DIR", "OPEN_DIR_NULL"})

#: Extension point (section 4.2): a newly added test case generator
#: "can define a set of types and their relationship to each other".
#: Instances registered here are included in every lattice the
#: injector builds; the accompanying subtype rules go into
#: :data:`repro.typelattice.rules.DIRECT_RULES`.
EXTENSION_INSTANCES: list[TypeInstance] = []


def register_extension_types(*instances: TypeInstance) -> None:
    for instance in instances:
        if instance not in EXTENSION_INSTANCES:
            EXTENSION_INSTANCES.append(instance)


def unregister_extension_types(*instances: TypeInstance) -> None:
    for instance in instances:
        if instance in EXTENSION_INSTANCES:
            EXTENSION_INSTANCES.remove(instance)
