"""Robust argument type computation (paper section 4.3).

Given the outcomes of all test cases for one argument — each test case
tagged with the *fundamental* type of the injected value — compute the
argument's robust type:

    the weakest type ``T`` such that every test case for which the
    function returned successfully lies in ``V(T)``, and every strict
    supertype of ``T`` contains at least one crashing test case.

Where the paper's definition leaves slack (several incomparable
weakest candidates; fundamentals whose values both succeeded and
crashed), we resolve it the way the examples in the paper do:

* candidates must contain all success cases ("feasible");
* among feasible candidates, first minimize the number of *crashing*
  fundamentals contained (zero when a crash-free candidate exists —
  then the result is exactly the paper's weakest crash-free
  supertype, e.g. ``R_ARRAY_NULL[44]`` for ``asctime``);
* among those, take the weakest; remaining ties break on observed
  coverage and then deterministically on the rendered name.

A *safe* argument type additionally contains no crashing case and
excludes nothing but crashing cases; whenever a safe type exists the
computed robust type is safe, as the paper requires.

The ``checkable`` filter models the wrapper generator's reality that
only types with checking functions can be enforced: the fully
automated flow cannot check ``OPEN_DIR`` (no POSIX verifier for
``DIR*``), so its enforced type weakens to accessible memory — which
is precisely why ``closedir`` still crashes under the full-auto
wrapper in Figure 6 and needs the manually added stateful assertion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.typelattice.instances import TypeInstance
from repro.typelattice.lattice import Lattice


class TestResult(enum.Enum):
    """Per-test-case outcome class used by the computation."""

    __test__ = False  # not a pytest collection target

    SUCCESS = "success"  # returned without setting errno
    ERROR = "error"  # returned with errno set (graceful rejection)
    FAILURE = "failure"  # crash, hang or abort


@dataclass(frozen=True)
class Observation:
    """One test case's fundamental type and its outcome.

    ``blamed`` is False when a crash occurred but fault attribution
    assigned it to a *different* argument of the call; such
    observations say nothing about this argument and are ignored.
    """

    fundamental: TypeInstance
    result: TestResult
    blamed: bool = True


@dataclass
class RobustType:
    """Result of the computation for one argument.

    Attributes:
        robust: the enforceable robust type (respects ``checkable``).
        ideal: the robust type with no checkability restriction; when
            it differs from ``robust`` the argument needs a manual
            (semi-auto) edit to be fully protected.
        safe: True when ``ideal`` is a *safe* argument type.
        crash_free: True when ``robust`` contains no fundamental that
            was observed to crash — i.e. the check blocks every crash
            the injector found for this argument.
        successes / failures: the observed fundamental sets, kept for
            reporting and the declaration XML.
    """

    robust: TypeInstance
    ideal: TypeInstance
    safe: bool
    crash_free: bool
    successes: frozenset[TypeInstance] = field(default_factory=frozenset)
    failures: frozenset[TypeInstance] = field(default_factory=frozenset)


CheckablePredicate = Callable[[TypeInstance], bool]


def compute_robust_type(
    observations: Iterable[Observation],
    lattice: Optional[Lattice] = None,
    checkable: Optional[CheckablePredicate] = None,
    conservative: bool = False,
) -> RobustType:
    """Compute the robust type for one argument.

    Args:
        observations: all test cases for this argument, across the
            whole (adaptive) injection run.
        lattice: the instantiated lattice to search; by default one is
            built over the size parameters observed in the
            fundamentals.
        checkable: restricts the *enforced* robust type to types the
            wrapper generator can emit a check for.  The unrestricted
            ``ideal`` type is always reported as well.
        conservative: the paper's stricter variant — anchor
            feasibility on every test case that *returned* (with or
            without an error) instead of only on successful returns.
            The default matches the paper's atomic-function
            assumption ("we have not experienced any problems by
            assuming functions to be atomic").
    """
    obs = [o for o in observations if o.blamed]
    if not obs:
        raise ValueError("cannot compute a robust type without observations")

    if lattice is None:
        sizes = {o.fundamental.param for o in obs if o.fundamental.param is not None}
        lattice = Lattice.for_sizes(sizes or {0})

    anchor_results = {TestResult.SUCCESS}
    if conservative:
        anchor_results.add(TestResult.ERROR)
    successes = {o.fundamental for o in obs if o.result in anchor_results}
    if not successes:
        # Every single test either crashed or was gracefully rejected.
        # Anchoring on the empty set would let the computation pick an
        # absurdly strong type (reject everything); fall back to the
        # conservative anchor so values the function merely rejects
        # stay allowed.
        successes = {o.fundamental for o in obs if o.result is not TestResult.FAILURE}
    failures = {o.fundamental for o in obs if o.result is TestResult.FAILURE}
    observed = {o.fundamental for o in obs}

    feasible = [
        t
        for t in lattice.instances
        if all(lattice.is_subtype(s, t) for s in successes)
    ]
    if not feasible:
        raise ValueError(
            "lattice has no common supertype for the observed successes; "
            "the top type is missing from the instance set"
        )

    ideal = _select(lattice, feasible, failures, observed)
    if checkable is not None:
        enforceable = [t for t in feasible if checkable(t)]
        robust = _select(lattice, enforceable, failures, observed) if enforceable else ideal
    else:
        robust = ideal

    crash_count = _crash_count(lattice, robust, failures)
    safe = _is_safe(lattice, ideal, obs)
    return RobustType(
        robust=robust,
        ideal=ideal,
        safe=safe,
        crash_free=crash_count == 0,
        successes=frozenset(successes),
        failures=frozenset(failures),
    )


def _crash_count(
    lattice: Lattice, candidate: TypeInstance, failures: set[TypeInstance]
) -> int:
    return sum(1 for f in failures if lattice.is_subtype(f, candidate))


def _select(
    lattice: Lattice,
    candidates: list[TypeInstance],
    failures: set[TypeInstance],
    observed: set[TypeInstance],
) -> TypeInstance:
    """Pick the robust type from feasible candidates (see module doc)."""
    best_crashes = min(_crash_count(lattice, t, failures) for t in candidates)
    leanest = [
        t for t in candidates if _crash_count(lattice, t, failures) == best_crashes
    ]
    weakest = lattice.weakest(leanest)
    if len(weakest) == 1:
        return weakest[0]
    # Tie-break: prefer the candidate covering more of the observed
    # non-crashing fundamentals (it rejects fewer legitimate values),
    # then the deterministic rendered name.
    def coverage(t: TypeInstance) -> int:
        return sum(1 for f in observed - failures if lattice.is_subtype(f, t))

    weakest.sort(key=lambda t: (-coverage(t), t.render()))
    return weakest[0]


def _is_safe(
    lattice: Lattice, candidate: TypeInstance, obs: list[Observation]
) -> bool:
    """The paper's safe-argument-type test: no contained test case
    crashed, and every excluded test case crashed."""
    for o in obs:
        inside = lattice.is_subtype(o.fundamental, candidate)
        if inside and o.result is TestResult.FAILURE:
            return False
        if not inside and o.result is not TestResult.FAILURE:
            return False
    return True
