"""Direct subtype rules between type templates.

Encodes the edges of the paper's Figure 3 and Figure 4 hierarchies (and
our additional families) as parameter-aware rules.  ``is_direct_subtype``
tests a single edge; the full partial order is the reflexive-transitive
closure computed by :class:`repro.typelattice.lattice.Lattice`.

Size parameter convention (paper Figure 3): ``R_ARRAY[t]`` requires *at
least* ``t`` readable bytes, so a larger requirement is a *stronger*
type: ``R_ARRAY[t'] <= R_ARRAY[t]  iff  t <= t'``, and
``RONLY_FIXED[v] <= R_ARRAY[t]  iff  t <= v``.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.typelattice.instances import TypeInstance
from repro.typelattice.registry import DIR_SIZE, FILE_SIZE

ParamRule = Callable[[Optional[int], Optional[int]], bool]


def _sup_at_most_sub(sub: Optional[int], sup: Optional[int]) -> bool:
    """``sup <= sub``: the supertype demands no more bytes."""
    return sub is not None and sup is not None and sup <= sub


def _any(sub: Optional[int], sup: Optional[int]) -> bool:
    return True


def _sup_within(limit: int) -> ParamRule:
    def rule(sub: Optional[int], sup: Optional[int]) -> bool:
        return sup is not None and sup <= limit

    return rule


#: (sub template name, sup template name) -> parameter rule.
DIRECT_RULES: dict[tuple[str, str], ParamRule] = {}


def _rule(sub: str, sup: str, rule: ParamRule = _any) -> None:
    DIRECT_RULES[(sub, sup)] = rule


# --- fixed-size array family (Figure 3) -------------------------------
for _unified in ("R_ARRAY", "W_ARRAY", "RW_ARRAY", "R_ARRAY_NULL", "W_ARRAY_NULL", "RW_ARRAY_NULL"):
    # Weakening within one template: demanding fewer bytes is weaker.
    _rule(_unified, _unified, _sup_at_most_sub)

_rule("RONLY_FIXED", "R_ARRAY", _sup_at_most_sub)
_rule("RW_FIXED", "RW_ARRAY", _sup_at_most_sub)
_rule("WONLY_FIXED", "W_ARRAY", _sup_at_most_sub)
_rule("RW_ARRAY", "R_ARRAY", _sup_at_most_sub)
_rule("RW_ARRAY", "W_ARRAY", _sup_at_most_sub)
_rule("R_ARRAY", "R_ARRAY_NULL", _sup_at_most_sub)
_rule("W_ARRAY", "W_ARRAY_NULL", _sup_at_most_sub)
_rule("RW_ARRAY", "RW_ARRAY_NULL", _sup_at_most_sub)
_rule("RW_ARRAY_NULL", "R_ARRAY_NULL", _sup_at_most_sub)
_rule("RW_ARRAY_NULL", "W_ARRAY_NULL", _sup_at_most_sub)
_rule("NULL", "R_ARRAY_NULL")
_rule("NULL", "W_ARRAY_NULL")
_rule("NULL", "RW_ARRAY_NULL")
_rule("R_ARRAY_NULL", "UNCONSTRAINED")
_rule("W_ARRAY_NULL", "UNCONSTRAINED")
_rule("INVALID", "UNCONSTRAINED")

# --- file pointer family (Figure 4) ------------------------------------
_rule("RONLY_FILE", "R_FILE")
_rule("RW_FILE", "R_FILE")
_rule("RW_FILE", "W_FILE")
_rule("WONLY_FILE", "W_FILE")
_rule("R_FILE", "OPEN_FILE")
_rule("W_FILE", "OPEN_FILE")
_rule("OPEN_FILE", "OPEN_FILE_NULL")
_rule("NULL", "OPEN_FILE_NULL")
# A FILE is an RW region of sizeof(FILE) bytes (Figure 4's cross edge).
_rule("OPEN_FILE", "RW_ARRAY", _sup_within(FILE_SIZE))
_rule("OPEN_FILE_NULL", "RW_ARRAY_NULL", _sup_within(FILE_SIZE))
# A corrupted FILE block is still accessible FILE-sized memory, but not
# an open FILE — this is what keeps memory checks insufficient for
# stdio corruption failures (paper section 6).
_rule("CORRUPT_FILE", "RW_ARRAY", _sup_within(FILE_SIZE))
_rule("STALE_FILE", "RW_ARRAY", _sup_within(FILE_SIZE))

# --- directory stream family -------------------------------------------
_rule("OPEN_DIR", "OPEN_DIR_NULL")
_rule("NULL", "OPEN_DIR_NULL")
_rule("OPEN_DIR", "RW_ARRAY", _sup_within(DIR_SIZE))
_rule("OPEN_DIR_NULL", "RW_ARRAY_NULL", _sup_within(DIR_SIZE))
_rule("CORRUPT_DIR", "RW_ARRAY", _sup_within(DIR_SIZE))
_rule("STALE_DIR", "RW_ARRAY", _sup_within(DIR_SIZE))

# --- C string family -----------------------------------------------------
_rule("STRING_RO", "CSTRING")
_rule("STRING_RW", "WRITABLE_STRING")
_rule("VALID_MODE", "MODE_STRING")
_rule("VALID_FORMAT", "FORMAT_STRING")
_rule("MODE_STRING", "CSTRING")
_rule("FORMAT_STRING", "CSTRING")
_rule("WRITABLE_STRING", "CSTRING")
_rule("CSTRING", "CSTRING_NULL")
_rule("WRITABLE_STRING", "WRITABLE_STRING_NULL")
_rule("WRITABLE_STRING_NULL", "CSTRING_NULL")
_rule("NULL", "CSTRING_NULL")
_rule("NULL", "WRITABLE_STRING_NULL")
# A terminated string is at least one readable byte.
_rule("CSTRING", "R_ARRAY", _sup_within(1))
_rule("WRITABLE_STRING", "RW_ARRAY", _sup_within(1))
_rule("CSTRING_NULL", "R_ARRAY_NULL", _sup_within(1))
_rule("WRITABLE_STRING_NULL", "RW_ARRAY_NULL", _sup_within(1))

# --- function pointers ----------------------------------------------------
_rule("VALID_FUNCPTR", "FUNCPTR")
_rule("FUNCPTR", "FUNCPTR_NULL")
_rule("NULL", "FUNCPTR_NULL")
_rule("FUNCPTR_NULL", "UNCONSTRAINED")

# --- file descriptors -------------------------------------------------------
_rule("FD_RONLY", "READABLE_FD")
_rule("FD_RW", "READABLE_FD")
_rule("FD_RW", "WRITABLE_FD")
_rule("FD_WONLY", "WRITABLE_FD")
_rule("READABLE_FD", "OPEN_FD")
_rule("WRITABLE_FD", "OPEN_FD")
_rule("OPEN_FD", "ANY_FD")
_rule("FD_CLOSED", "ANY_FD")
_rule("FD_NEGATIVE", "ANY_FD")
_rule("FD_HUGE", "ANY_FD")

# --- integers (the section 4.2 overlapping-types example) --------------------
# CHAR_RANGE ([-128, 255]) overlaps both INT_NONNEG and INT_NONPOS, so
# the fundamentals are split at the boundaries exactly as the paper
# splits negative/zero/positive for the non-negative example.
_rule("INT_BIG_NEG", "INT_NONPOS")
_rule("INT_SMALL_NEG", "INT_NONPOS")
_rule("INT_SMALL_NEG", "CHAR_RANGE")
_rule("INT_ZERO", "INT_NONPOS")
_rule("INT_ZERO", "INT_NONNEG")
_rule("INT_ZERO", "CHAR_RANGE")
_rule("INT_SMALL_POS", "INT_NONNEG")
_rule("INT_SMALL_POS", "CHAR_RANGE")
_rule("INT_BIG_POS", "INT_NONNEG")
_rule("CHAR_RANGE", "ANY_INT")
_rule("INT_NONNEG", "ANY_INT")
_rule("INT_NONPOS", "ANY_INT")

# --- sizes -------------------------------------------------------------------
_rule("SIZE_ZERO", "REASONABLE_SIZE")
_rule("SIZE_SMALL", "REASONABLE_SIZE")
_rule("REASONABLE_SIZE", "ANY_SIZE")
_rule("SIZE_HUGE", "ANY_SIZE")

# --- reals ---------------------------------------------------------------------
_rule("REAL_NEG", "FINITE_REAL")
_rule("REAL_ZERO", "FINITE_REAL")
_rule("REAL_POS", "FINITE_REAL")
_rule("FINITE_REAL", "ANY_REAL")
_rule("REAL_NAN", "ANY_REAL")
_rule("REAL_INF", "ANY_REAL")


def is_direct_subtype(sub: TypeInstance, sup: TypeInstance) -> bool:
    """True when a single registered rule links ``sub`` under ``sup``."""
    rule = DIRECT_RULES.get((sub.name, sup.name))
    if rule is None:
        return False
    if sub.name == sup.name and sub.param == sup.param:
        return False  # strictness; reflexivity is handled by the lattice
    return rule(sub.param, sup.param)
