"""Type vectors for n-ary functions (paper section 4.3, "Multiple
Arguments").

The partial order over types lifts pointwise to n-dimensional type
vectors; a test case *vector* (one injected value per argument)
uniquely defines a vector of fundamental types.  The robust type
vector is computed argumentwise from attributed observations — fault
attribution (which generator owns the fault address) decides which
component of a crashing vector is to blame, so crashes never poison
the other arguments' statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.typelattice.instances import TypeInstance
from repro.typelattice.lattice import Lattice
from repro.typelattice.robust import (
    CheckablePredicate,
    Observation,
    RobustType,
    TestResult,
    compute_robust_type,
)


@dataclass(frozen=True)
class VectorObservation:
    """One fault-injection call of an n-ary function.

    Attributes:
        fundamentals: the fundamental type of each argument's value.
        result: the call's outcome class.
        blamed_argument: index of the argument whose generator claimed
            the fault address, or None when the fault could not be
            attributed (hangs, aborts, faults on libc-internal
            addresses).  Only the blamed argument records a FAILURE.
    """

    fundamentals: tuple[TypeInstance, ...]
    result: TestResult
    blamed_argument: Optional[int] = None


class TypeVectorOrder:
    """Pointwise partial order over type vectors (one lattice per
    argument position)."""

    def __init__(self, lattices: Sequence[Lattice]) -> None:
        self.lattices = list(lattices)

    @property
    def arity(self) -> int:
        return len(self.lattices)

    def is_subvector(
        self, sub: Sequence[TypeInstance], sup: Sequence[TypeInstance]
    ) -> bool:
        """``sub <= sup`` pointwise (non-strict)."""
        if len(sub) != self.arity or len(sup) != self.arity:
            raise ValueError("vector arity mismatch")
        return all(
            lattice.is_subtype(s, t)
            for lattice, s, t in zip(self.lattices, sub, sup)
        )

    def is_strict_subvector(
        self, sub: Sequence[TypeInstance], sup: Sequence[TypeInstance]
    ) -> bool:
        return self.is_subvector(sub, sup) and tuple(sub) != tuple(sup)

    def contains_vector(
        self,
        vector: Sequence[TypeInstance],
        fundamentals: Sequence[TypeInstance],
    ) -> bool:
        """Whether a test case vector (of fundamentals) lies in the
        value set of ``vector``."""
        return self.is_subvector(fundamentals, vector)


def compute_robust_vector(
    observations: Iterable[VectorObservation],
    lattices: Optional[Sequence[Lattice]] = None,
    checkable: Optional[CheckablePredicate] = None,
    conservative: bool = False,
) -> list[RobustType]:
    """Compute the robust type of every argument of an n-ary function.

    For each argument position the vector observations project to
    per-argument :class:`Observation` streams; a crashing call only
    counts as a FAILURE for the argument its fault was attributed to
    (for the others the call is disregarded, mirroring the paper's
    adaptive attribution loop).
    """
    vectors = list(observations)
    if not vectors:
        raise ValueError("no observations")
    arity = len(vectors[0].fundamentals)
    if any(len(v.fundamentals) != arity for v in vectors):
        raise ValueError("inconsistent observation arity")

    # Blame-by-elimination for unattributed crashes (fault address owned
    # by no generator, e.g. a wild read derived from argument content):
    # the crash is charged to every argument position whose fundamental
    # never produced a returning call at that position.  This recovers
    # the paper's vector-level semantics ("each supertype vector
    # contains a crashing test case vector") in the componentwise
    # projection.
    returning: list[set[TypeInstance]] = [set() for _ in range(arity)]
    for vector in vectors:
        if vector.result is not TestResult.FAILURE:
            for index, fundamental in enumerate(vector.fundamentals):
                returning[index].add(fundamental)

    results: list[RobustType] = []
    for index in range(arity):
        projected: list[Observation] = []
        for vector in vectors:
            fundamental = vector.fundamentals[index]
            if vector.result is TestResult.FAILURE:
                if vector.blamed_argument == index:
                    projected.append(Observation(fundamental, TestResult.FAILURE))
                elif (
                    vector.blamed_argument is None
                    and fundamental not in returning[index]
                ):
                    projected.append(Observation(fundamental, TestResult.FAILURE))
                # Other-argument failures are ignored for this component.
                continue
            projected.append(Observation(fundamental, vector.result))
        lattice = lattices[index] if lattices is not None else None
        results.append(
            compute_robust_type(
                projected,
                lattice=lattice,
                checkable=checkable,
                conservative=conservative,
            )
        )
    return results
