"""Phase 2: the robustness wrapper generator and its runtime."""

from repro.wrapper.checks import CheckConfig, CheckLibrary, MAX_STRING_SCAN
from repro.wrapper.codegen import (
    check_expression,
    generate_checks_header,
    generate_preamble,
    generate_wrapper_function,
    generate_wrapper_library,
)
from repro.wrapper.program import (
    PROGRAM_VERSION,
    CheckProgram,
    ProgramContext,
    clear_program_cache,
    compile_program,
    program_cache_size,
    program_for,
)
from repro.wrapper.relational import BUFFER_PLANS, BufferPlan, relational_violation
from repro.wrapper.state import DEFAULT_LOG_CAP, WrapperState
from repro.wrapper.wrapper import WrapperLibrary, WrapperPolicy, WrapperStats

__all__ = [
    "BUFFER_PLANS",
    "BufferPlan",
    "CheckConfig",
    "CheckLibrary",
    "CheckProgram",
    "DEFAULT_LOG_CAP",
    "MAX_STRING_SCAN",
    "PROGRAM_VERSION",
    "ProgramContext",
    "WrapperLibrary",
    "WrapperPolicy",
    "WrapperState",
    "WrapperStats",
    "check_expression",
    "clear_program_cache",
    "compile_program",
    "generate_checks_header",
    "generate_preamble",
    "generate_wrapper_function",
    "generate_wrapper_library",
    "program_cache_size",
    "program_for",
    "relational_violation",
]
