"""Phase 2: the robustness wrapper generator and its runtime."""

from repro.wrapper.checks import CheckConfig, CheckLibrary, MAX_STRING_SCAN
from repro.wrapper.codegen import (
    check_expression,
    generate_checks_header,
    generate_preamble,
    generate_wrapper_function,
    generate_wrapper_library,
)
from repro.wrapper.relational import BUFFER_PLANS, BufferPlan, relational_violation
from repro.wrapper.state import WrapperState
from repro.wrapper.wrapper import WrapperLibrary, WrapperPolicy, WrapperStats

__all__ = [
    "BUFFER_PLANS",
    "BufferPlan",
    "CheckConfig",
    "CheckLibrary",
    "MAX_STRING_SCAN",
    "WrapperLibrary",
    "WrapperPolicy",
    "WrapperState",
    "WrapperStats",
    "check_expression",
    "generate_checks_header",
    "generate_preamble",
    "generate_wrapper_function",
    "generate_wrapper_library",
    "relational_violation",
]
