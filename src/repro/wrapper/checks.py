"""The wrapper's checking functions (paper sections 5.1 and 5.2).

One checking function per unified type — ``check_R_ARRAY_NULL`` and
friends from the generated wrapper code (Figure 5) — implemented
against the simulated runtime.

Memory validation follows the paper's two-tier strategy:

* **stateful** — pointers into the tracked heap are bounds-checked
  against the allocation table, which catches *same-page* overflows a
  probe cannot see (section 8);
* **stateless** — other memory is probed "one byte per page" at page
  granularity, the signal-handler technique of [2].

Both tiers are switchable so the ablation benches can measure each in
isolation.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.libc.fileio import OFF_FD, OFF_FLAGS
from repro.libc.runtime import LibcRuntime
from repro.memory import NULL, PAGE_SIZE, page_of
from repro.typelattice.instances import TypeInstance
from repro.typelattice.registry import DIR_SIZE, FILE_SIZE
from repro.wrapper.state import WrapperState

#: Upper bound for NUL-terminator scans (CSTRING checks).
MAX_STRING_SCAN = 65536

_MODE_RE = re.compile(rb"^[rwa][b+]*$")


@dataclass
class CheckConfig:
    """Feature switches for the check library (ablation knobs).

    Attributes:
        stateful: consult the heap allocation table first.
        page_probe: probe one byte per page for non-heap memory (the
            paper's default); when False the probe touches every byte
            (the slow exhaustive alternative the ablation compares).
        page_granularity: model real-MMU page granularity for probes —
            an accessible byte validates its whole page.  False (the
            default) matches our electric-fence memory model, where
            every mapping ends exactly at its last byte; True emulates
            the shared-page reality in which stateless probing misses
            same-page overflows (the paper's section 8 comparison) and
            exists for the ablation bench.
    """

    stateful: bool = True
    page_probe: bool = True
    page_granularity: bool = False


class CheckLibrary:
    """Evaluates robust-type membership for concrete argument values."""

    def __init__(
        self,
        runtime: LibcRuntime,
        state: WrapperState,
        config: CheckConfig | None = None,
    ) -> None:
        self.runtime = runtime
        self.state = state
        self.config = config or CheckConfig()
        #: assertion names active for the function being checked; set
        #: by the wrapper before dispatching.
        self.active_assertions: tuple[str, ...] = ()
        #: counters for the overhead benches
        self.checks_performed = 0
        self.probe_bytes = 0

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def check(self, instance: TypeInstance, value) -> bool:
        """Does ``value`` belong to ``V(instance)``?

        Only unified (checkable) types are supported; the wrapper
        generator never emits checks for bare fundamentals except NULL
        and the open-structure types.
        """
        self.checks_performed += 1
        handler = getattr(self, f"_check_{instance.name}", None)
        if handler is None:
            raise KeyError(f"no checking function for type {instance.render()}")
        return handler(instance, value)

    # ------------------------------------------------------------------
    # memory validation primitives
    # ------------------------------------------------------------------
    def memory_ok(self, pointer: int, size: int, read: bool, write: bool) -> bool:
        """Validate that ``size`` bytes at ``pointer`` are accessible."""
        if pointer == NULL:
            return False
        if size == 0:
            size = 1
        if self.config.stateful:
            remaining = self.runtime.heap.remaining_from(pointer)
            if remaining is not None:
                # Heap block: exact bounds from the allocation table.
                return remaining >= size
        return self._probe(pointer, size, read, write)

    def _probe(self, pointer: int, size: int, read: bool, write: bool) -> bool:
        """Stateless accessibility probe."""
        space = self.runtime.space
        if self.config.page_probe:
            # Lazy iteration: the first inaccessible probe exits, so
            # absurd sizes fail after a handful of probes instead of
            # enumerating billions of pages.
            def points():
                for address in range(pointer, pointer + size, PAGE_SIZE):
                    yield address
                if size > 1 and (pointer + size - 1 - pointer) % PAGE_SIZE != 0:
                    yield pointer + size - 1

            probe_points = points()
        else:
            probe_points = iter(range(pointer, pointer + size))
        for address in probe_points:
            self.probe_bytes += 1
            if self.config.page_granularity:
                if not self._page_accessible(address, read, write):
                    return False
            else:
                if read and not space.is_readable(address, 1):
                    return False
                if write and not space.is_writable(address, 1):
                    return False
        return True

    def _page_accessible(self, address: int, read: bool, write: bool) -> bool:
        """Page-granular accessibility: any mapping on the page with
        the required permissions validates the whole page (this is
        exactly why probing misses same-page overflows)."""
        space = self.runtime.space
        page_start = page_of(address) * PAGE_SIZE
        page_end = page_start + PAGE_SIZE
        probe = max(address, page_start)
        # Find a region overlapping this page.
        region = space.region_at(probe)
        if region is None:
            # Scan the page for any region starting within it.
            for candidate in space.regions():
                if candidate.base < page_end and candidate.end > page_start:
                    region = candidate
                    break
        if region is None or region.freed:
            return False
        if read and not space.is_readable(region.base, 1):
            return False
        if write and not space.is_writable(region.base, min(1, region.size) or 1):
            return False
        return True

    def string_length(self, pointer: int) -> int | None:
        """Length of the NUL-terminated string at ``pointer``, or None
        when no terminator lies within accessible memory."""
        space = self.runtime.space
        if pointer == NULL:
            return None
        if self.config.stateful:
            remaining = self.runtime.heap.remaining_from(pointer)
            if remaining is not None:
                limit = min(remaining, MAX_STRING_SCAN)
                data = space.load(pointer, limit) if limit else b""
                index = data.find(b"\x00")
                return index if index >= 0 else None
        # Non-heap memory: bulk NUL scan over whole region slices (the
        # PR-4 fast path) instead of one bounds-checked load per byte.
        # ``terminated`` is True only when a NUL was actually read
        # before the cap / a fault, so misses (unreadable byte, string
        # longer than MAX_STRING_SCAN) return None exactly as the
        # byte-at-a-time loop did.
        payload, terminated, _fault = space.scan_cstring(pointer, MAX_STRING_SCAN)
        return len(payload) if terminated else None

    # ------------------------------------------------------------------
    # pointer / array checks (Figure 3 types)
    # ------------------------------------------------------------------
    def _check_UNCONSTRAINED(self, instance, value) -> bool:
        return True

    def _check_NULL(self, instance, value) -> bool:
        return value == NULL

    def _check_R_ARRAY(self, instance, value) -> bool:
        return self.memory_ok(value, instance.param or 1, True, False)

    def _check_W_ARRAY(self, instance, value) -> bool:
        return self.memory_ok(value, instance.param or 1, False, True)

    def _check_RW_ARRAY(self, instance, value) -> bool:
        return self.memory_ok(value, instance.param or 1, True, True)

    def _check_R_ARRAY_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_R_ARRAY(instance, value)

    def _check_W_ARRAY_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_W_ARRAY(instance, value)

    def _check_RW_ARRAY_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_RW_ARRAY(instance, value)

    # ------------------------------------------------------------------
    # string checks
    # ------------------------------------------------------------------
    def _check_CSTRING(self, instance, value) -> bool:
        return self.string_length(value) is not None

    def _check_CSTRING_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_CSTRING(instance, value)

    def _check_WRITABLE_STRING(self, instance, value) -> bool:
        length = self.string_length(value)
        if length is None:
            return False
        return self.memory_ok(value, length + 1, True, True)

    def _check_WRITABLE_STRING_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_WRITABLE_STRING(instance, value)

    def _check_MODE_STRING(self, instance, value) -> bool:
        length = self.string_length(value)
        if length is None:
            return False
        content = self.runtime.space.load(value, length)
        return bool(_MODE_RE.match(content))

    def _check_FORMAT_STRING(self, instance, value) -> bool:
        """Directive-free formats only: every '%' must be '%%'.  This
        conservatively blocks argument-consuming directives and the
        %n write primitive used by format-string attacks."""
        length = self.string_length(value)
        if length is None:
            return False
        content = self.runtime.space.load(value, length)
        index = 0
        while index < len(content):
            if content[index] == ord("%"):
                if index + 1 >= len(content) or content[index + 1] != ord("%"):
                    return False
                index += 2
            else:
                index += 1
        return True

    # ------------------------------------------------------------------
    # FILE / DIR checks
    # ------------------------------------------------------------------
    def _file_struct_ok(self, value: int, need_read: bool, need_write: bool) -> bool:
        """The paper's FILE validation: accessible FILE-sized memory,
        then fileno + fstat on the embedded descriptor.  "In theory,
        this is not a complete test" — corrupted structures with live
        descriptors pass, exactly as in the paper."""
        if not self.memory_ok(value, FILE_SIZE, True, True):
            return False
        fd = self.runtime.space.load_i32(value + OFF_FD)
        mode = self.runtime.kernel.fd_mode(fd)
        if mode is None:
            return False
        readable, writable = mode
        flags = self.runtime.space.load_u32(value + OFF_FLAGS)
        if need_read and not (readable or flags & 1):
            return False
        if need_write and not (writable or flags & 2):
            return False
        return True

    def _check_OPEN_FILE(self, instance, value) -> bool:
        if "track_file" in getattr(self, "active_assertions", ()):
            if not self.state.assert_tracked_file(value):
                return False
        return self._file_struct_ok(value, False, False)

    def _check_OPEN_FILE_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_OPEN_FILE(instance, value)

    def _check_R_FILE(self, instance, value) -> bool:
        return self._file_struct_ok(value, True, False)

    def _check_W_FILE(self, instance, value) -> bool:
        return self._file_struct_ok(value, False, True)

    def _check_OPEN_DIR(self, instance, value) -> bool:
        """Only checkable via the stateful DIR table (section 5.2)."""
        return self.state.assert_tracked_dir(value)

    def _check_OPEN_DIR_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_OPEN_DIR(instance, value)

    # ------------------------------------------------------------------
    # scalar checks
    # ------------------------------------------------------------------
    def _check_ANY_INT(self, instance, value) -> bool:
        return True

    def _check_CHAR_RANGE(self, instance, value) -> bool:
        return -128 <= value <= 255

    def _check_INT_NONNEG(self, instance, value) -> bool:
        return value >= 0

    def _check_INT_NONPOS(self, instance, value) -> bool:
        return value <= 0

    def _check_ANY_SIZE(self, instance, value) -> bool:
        return True

    def _check_REASONABLE_SIZE(self, instance, value) -> bool:
        return 0 <= value < 2**31

    def _check_ANY_REAL(self, instance, value) -> bool:
        return True

    def _check_FINITE_REAL(self, instance, value) -> bool:
        return math.isfinite(value)

    def _check_ANY_FD(self, instance, value) -> bool:
        return True

    def _check_OPEN_FD(self, instance, value) -> bool:
        return self.runtime.kernel.fd_mode(value) is not None

    def _check_READABLE_FD(self, instance, value) -> bool:
        mode = self.runtime.kernel.fd_mode(value)
        return mode is not None and mode[0]

    def _check_WRITABLE_FD(self, instance, value) -> bool:
        mode = self.runtime.kernel.fd_mode(value)
        return mode is not None and mode[1]

    # ------------------------------------------------------------------
    # function pointer checks
    # ------------------------------------------------------------------
    def _check_FUNCPTR(self, instance, value) -> bool:
        return value in self.runtime.funcptrs

    def _check_FUNCPTR_NULL(self, instance, value) -> bool:
        return value == NULL or self._check_FUNCPTR(instance, value)
