"""C source generation for robustness wrappers (paper Figure 5).

Emits, per unsafe function declaration, the wrapper C code the real
HEALERS produced: prototype from the declaration, the ``in_flag``
recursion guard, one ``check_<TYPE>`` call per constrained argument,
errno assignment and the error-return path, and the PostProcessing
label.  Also emits the preamble that resolves the original symbols
with ``dlsym`` and the interposer boilerplate.
"""

from __future__ import annotations

from repro.declarations.model import FunctionDeclaration
from repro.libc.errno_codes import errno_name
from repro.typelattice.instances import TypeInstance

#: check_* function name and extra arguments per unified type.
_CHECK_SIGNATURES: dict[str, str] = {
    "R_ARRAY": "check_R_ARRAY({value}, {param})",
    "W_ARRAY": "check_W_ARRAY({value}, {param})",
    "RW_ARRAY": "check_RW_ARRAY({value}, {param})",
    "R_ARRAY_NULL": "check_R_ARRAY_NULL({value}, {param})",
    "W_ARRAY_NULL": "check_W_ARRAY_NULL({value}, {param})",
    "RW_ARRAY_NULL": "check_RW_ARRAY_NULL({value}, {param})",
    "CSTRING": "check_CSTRING({value})",
    "CSTRING_NULL": "check_CSTRING_NULL({value})",
    "WRITABLE_STRING": "check_WRITABLE_STRING({value})",
    "WRITABLE_STRING_NULL": "check_WRITABLE_STRING_NULL({value})",
    "MODE_STRING": "check_MODE_STRING({value})",
    "FORMAT_STRING": "check_FORMAT_STRING({value})",
    "OPEN_FILE": "check_OPEN_FILE({value})",
    "OPEN_FILE_NULL": "check_OPEN_FILE_NULL({value})",
    "R_FILE": "check_R_FILE({value})",
    "W_FILE": "check_W_FILE({value})",
    "OPEN_DIR": "check_OPEN_DIR({value})",
    "OPEN_DIR_NULL": "check_OPEN_DIR_NULL({value})",
    "OPEN_FD": "check_OPEN_FD({value})",
    "READABLE_FD": "check_READABLE_FD({value})",
    "WRITABLE_FD": "check_WRITABLE_FD({value})",
    "CHAR_RANGE": "check_CHAR_RANGE({value})",
    "INT_NONNEG": "({value} >= 0)",
    "INT_NONPOS": "({value} <= 0)",
    "REASONABLE_SIZE": "check_REASONABLE_SIZE({value})",
    "FINITE_REAL": "isfinite({value})",
    "FUNCPTR": "check_FUNCPTR({value})",
    "FUNCPTR_NULL": "check_FUNCPTR_NULL({value})",
    "NULL": "({value} == NULL)",
}

#: types requiring no check at all.
_UNCHECKED = frozenset({"UNCONSTRAINED", "ANY_INT", "ANY_SIZE", "ANY_REAL", "ANY_FD"})


def check_expression(instance: TypeInstance, value: str) -> str | None:
    """The C expression testing ``value`` against ``instance``; None
    when the type needs no check."""
    if instance.name in _UNCHECKED:
        return None
    template = _CHECK_SIGNATURES.get(instance.name)
    if template is None:
        return None
    return template.format(value=value, param=instance.param or 1)


def _split_type_for_param(ctype: str, name: str) -> str:
    """Render ``const struct tm *`` + ``a1`` as a C parameter."""
    ctype = ctype.strip()
    if ctype.endswith("*"):
        return f"{ctype}{name}"
    return f"{ctype} {name}"


def generate_wrapper_function(declaration: FunctionDeclaration) -> str:
    """Generate the wrapper C function for one declaration — the
    Figure 5 shape."""
    name = declaration.name
    params = [
        _split_type_for_param(argument.ctype, f"a{i + 1}")
        for i, argument in enumerate(declaration.arguments)
    ]
    if declaration.variadic:
        params.append("...")
    signature = f"{declaration.return_type.strip()} {name} ({', '.join(params) or 'void'})"
    args = ", ".join(f"a{i + 1}" for i in range(len(declaration.arguments)))
    call = f"(*libc_{name}) ({args})"
    is_void = declaration.return_type.strip() == "void"
    errno_value = errno_name(declaration.errnos[0]) if declaration.errnos else "EINVAL"

    lines: list[str] = [f"{signature} {{"]
    if not is_void:
        lines.append(f"    {declaration.return_type.strip()} ret;")
    lines.append("    if (in_flag) {")
    if is_void:
        lines.append(f"        {call};")
        lines.append("        return;")
    else:
        lines.append(f"        return {call};")
    lines.append("    }")
    lines.append("    in_flag = 1;")

    for index, argument in enumerate(declaration.arguments):
        expression = check_expression(argument.robust_type, f"a{index + 1}")
        if expression is None:
            continue
        lines.append(f"    if (!{expression}) {{")
        lines.append(f"        errno = {errno_value};")
        if not is_void:
            lines.append(
                f"        ret = ({declaration.return_type.strip()}) "
                f"{declaration.error_value_text};"
            )
        lines.append("        goto PostProcessing;")
        lines.append("    }")

    for assertion in declaration.assertions:
        lines.append(f"    if (!healers_assert_{assertion}({args or ''})) {{")
        lines.append(f"        errno = {errno_value};")
        if not is_void:
            lines.append(
                f"        ret = ({declaration.return_type.strip()}) "
                f"{declaration.error_value_text};"
            )
        lines.append("        goto PostProcessing;")
        lines.append("    }")

    if is_void:
        lines.append(f"    {call};")
    else:
        lines.append(f"    ret = {call};")
    lines.append("PostProcessing: ;")
    lines.append("    in_flag = 0;")
    if not is_void:
        lines.append("    return ret;")
    lines.append("}")
    return "\n".join(lines)


def generate_preamble(declarations: dict[str, FunctionDeclaration]) -> str:
    """dlsym resolution block + shared wrapper state."""
    lines = [
        "/* HEALERS robustness wrapper — generated code.",
        " * Link as a shared library with priority over libc",
        " * (LD_PRELOAD) so these definitions interpose. */",
        "#include <errno.h>",
        "#include <dlfcn.h>",
        "#include <math.h>",
        "#include \"healers_checks.h\"",
        "",
        "static __thread int in_flag = 0;",
        "",
    ]
    for name, decl in sorted(declarations.items()):
        if not decl.unsafe:
            continue
        params = ", ".join(a.ctype for a in decl.arguments) or "void"
        lines.append(
            f"static {decl.return_type.strip()} (*libc_{name})({params});"
        )
    lines.append("")
    lines.append("static void __attribute__((constructor)) healers_resolve(void) {")
    for name, decl in sorted(declarations.items()):
        if not decl.unsafe:
            continue
        lines.append(
            f'    libc_{name} = dlsym(RTLD_NEXT, "{name}");  '
            f"/* version {decl.version} */"
        )
    lines.append("}")
    return "\n".join(lines)


#: check helpers grouped by implementation strategy, for the header.
_CHECK_DECLS = (
    ("memory accessibility (heap table first, page probe otherwise)", (
        "int check_R_ARRAY(const void *p, unsigned long size);",
        "int check_W_ARRAY(void *p, unsigned long size);",
        "int check_RW_ARRAY(void *p, unsigned long size);",
        "int check_R_ARRAY_NULL(const void *p, unsigned long size);",
        "int check_W_ARRAY_NULL(void *p, unsigned long size);",
        "int check_RW_ARRAY_NULL(void *p, unsigned long size);",
    )),
    ("string validation (bounded NUL scan)", (
        "int check_CSTRING(const char *s);",
        "int check_CSTRING_NULL(const char *s);",
        "int check_WRITABLE_STRING(char *s);",
        "int check_WRITABLE_STRING_NULL(char *s);",
        "int check_MODE_STRING(const char *mode);",
        "int check_FORMAT_STRING(const char *format);",
    )),
    ("opaque structures (fileno/fstat probe; DIR table assertion)", (
        "int check_OPEN_FILE(FILE *fp);",
        "int check_OPEN_FILE_NULL(FILE *fp);",
        "int check_R_FILE(FILE *fp);",
        "int check_W_FILE(FILE *fp);",
        "int check_OPEN_DIR(DIR *dirp);",
        "int check_OPEN_DIR_NULL(DIR *dirp);",
    )),
    ("descriptors and scalars", (
        "int check_OPEN_FD(int fd);",
        "int check_READABLE_FD(int fd);",
        "int check_WRITABLE_FD(int fd);",
        "int check_CHAR_RANGE(int c);",
        "int check_REASONABLE_SIZE(unsigned long n);",
        "int check_FUNCPTR(const void *fp);",
        "int check_FUNCPTR_NULL(const void *fp);",
    )),
    ("executable assertions (stateful, from manual edits)", (
        "int healers_assert_track_dir(DIR *dirp);",
        "int healers_assert_track_file(FILE *fp);",
        "int healers_assert_strtok_state(char *s, const char *delim);",
    )),
)


def generate_checks_header() -> str:
    """``healers_checks.h``: the check library's C interface, so the
    generated wrapper source is a complete compile unit."""
    lines = [
        "/* HEALERS checking-function library — generated header. */",
        "#ifndef HEALERS_CHECKS_H",
        "#define HEALERS_CHECKS_H 1",
        "",
        "#include <stdio.h>",
        "#include <dirent.h>",
        "",
        "/* All checks return 1 when the value belongs to the unified",
        " * type's value set, 0 otherwise.  Memory checks consult the",
        " * malloc-interposition allocation table first and fall back to",
        " * one-probe-per-page accessibility testing. */",
    ]
    for comment, decls in _CHECK_DECLS:
        lines.append("")
        lines.append(f"/* {comment} */")
        lines.extend(decls)
    lines += ["", "#endif /* HEALERS_CHECKS_H */", ""]
    return "\n".join(lines)


def generate_wrapper_library(declarations: dict[str, FunctionDeclaration]) -> str:
    """Full generated C source for the wrapper shared library.  Safe
    functions are skipped ("it avoids the overhead of unnecessary
    argument checks")."""
    parts = [generate_preamble(declarations)]
    for name in sorted(declarations):
        declaration = declarations[name]
        if not declaration.unsafe:
            continue
        parts.append(generate_wrapper_function(declaration))
    return "\n\n".join(parts) + "\n"
