"""Compiled wrapper check programs (the PR-5 planning trick, phase 2).

The interpreted checker (:class:`~repro.wrapper.checks.CheckLibrary`)
pays, on **every hardened call**, for work that only depends on the
function's *declaration*: a fresh ``CheckLibrary`` instance, a zip over
the argument list, a policy branch per argument, and an
``getattr(self, f"_check_{name}")`` dispatch per check.  Table 2 makes
this the product — checking cost is what callers pay per call — so this
module compiles each :class:`~repro.declarations.model.FunctionDeclaration`
once into a :class:`CheckProgram`: a flattened tuple of specialized
step closures with

* **precomputed bounds** — ARRAY sizes, NULL-admissibility, violation
  strings and scalar ranges are burned in at compile time;
* **fused pointer+size validation** — ``R_ARRAY_NULL`` is one step,
  not a NULL test plus a handler dispatch plus a ``memory_ok`` call;
* **hoisted lookups** — check handlers are resolved once at compile
  time, and the per-call runtime state (heap table, address space,
  kernel fd table, funcptr registry) is bound once per call by the
  reusable :class:`ProgramContext`, not re-fetched per check;
* **prototype sharing** — programs are content-addressed by the
  declaration *shape* (robust-type renders, assertions, relational
  plans, policy and config), exactly the way
  :class:`~repro.injector.plan.InjectionPlan` is shared across
  same-shaped prototypes, so the 86-function catalog compiles to a
  far smaller program set and every later ``WrapperLibrary`` in the
  process reuses it.

On top, :class:`ProgramContext` keeps a **revalidation cache**: a small
``(pointer, size, read, write) -> bool`` memo for the content-independent
``memory_ok`` decision, valid only while the address space's
:attr:`~repro.memory.address_space.AddressSpace.generation` counter is
unchanged.  ``map``/``unmap``/``protect`` and ``free`` bump the
counter, so any mapping or heap-table mutation invalidates the cache;
content-dependent decisions (string scans, FILE probes, fd modes) are
never cached.  Repeat-validated arguments — the common case in
call-intensive applications that hammer the same buffers — skip memory
probing entirely.

Soundness contract, pinned by ``tests/test_wrapper_program.py``:
compiled programs return **decision-identical** results to the
interpreted ``CheckLibrary`` — same accept/reject, same violation
strings, same error codes, same ``checks_performed`` accounting —
across the whole catalog and every :class:`CheckConfig` ablation.
"""

from __future__ import annotations

import hashlib
import math
import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.declarations.model import FunctionDeclaration
from repro.memory import NULL
from repro.wrapper.checks import CheckConfig, CheckLibrary
from repro.wrapper.relational import BUFFER_PLANS

#: Bumped whenever compiled program structure or step semantics
#: change; folded into every program digest.
PROGRAM_VERSION = 1

#: Default bound on the per-context revalidation cache.
DEFAULT_REVALIDATE_CAP = 256

#: Types whose check is cheap enough for the MINIMAL wrapper (moved
#: here from the wrapper so both the interpreter and the compiler key
#: off one definition).
MINIMAL_CHECKED = frozenset({"NULL", "FUNCPTR", "FUNCPTR_NULL"})

#: Families the MINIMAL policy treats as pointers (wild-pointer test).
POINTER_FAMILIES = ("ptr", "file", "dir", "string", "funcptr")

#: One compiled step: ``(args, ctx) -> violation | None``.
Step = Callable[[Sequence, "ProgramContext"], Optional[str]]

#: Step cost classes (see :meth:`CheckProgram.run`): every compiled
#: step is tagged with the class of work it performs so the optional
#: cost-counting run path can attribute per-call checking cost.
STEP_KINDS = (
    "pass", "array", "null", "string", "scalar", "funcptr", "handler",
    "minimal", "assertion", "relational",
)

#: ARRAY-family fusion table: name -> (read, write, allow_null).
_ARRAY_SPECS: dict[str, tuple[bool, bool, bool]] = {
    "R_ARRAY": (True, False, False),
    "W_ARRAY": (False, True, False),
    "RW_ARRAY": (True, True, False),
    "R_ARRAY_NULL": (True, False, True),
    "W_ARRAY_NULL": (False, True, True),
    "RW_ARRAY_NULL": (True, True, True),
}

#: Types whose handler accepts unconditionally (counted no-ops, to
#: keep ``checks_performed`` identical to the interpreter).
_PASS_TYPES = frozenset(
    {"UNCONSTRAINED", "ANY_INT", "ANY_SIZE", "ANY_REAL", "ANY_FD"}
)

#: Scalar fast paths: name -> predicate over the argument value.
_SCALAR_PREDICATES: dict[str, Callable[[object], bool]] = {
    "CHAR_RANGE": lambda v: -128 <= v <= 255,
    "INT_NONNEG": lambda v: v >= 0,
    "INT_NONPOS": lambda v: v <= 0,
    "REASONABLE_SIZE": lambda v: 0 <= v < 2**31,
    "FINITE_REAL": lambda v: math.isfinite(v),
}


class ProgramContext(CheckLibrary):
    """A reusable, runtime-rebindable check-primitive set.

    Subclasses :class:`CheckLibrary` so every primitive a compiled
    step (or a compile-time-resolved handler) touches is *the same
    code* the interpreter runs — decision identity by construction —
    while adding:

    * :meth:`bind` — one-per-call rebinding to the current runtime
      (hoisting the space/heap/funcptr lookups out of the steps) with
      generation-checked cache retention;
    * a bounded revalidation cache over :meth:`memory_ok`, hit when
      the same ``(pointer, size, read, write)`` tuple is re-validated
      under an unchanged mapping generation.
    """

    def __init__(
        self,
        state,
        config: Optional[CheckConfig] = None,
        cache_cap: int = DEFAULT_REVALIDATE_CAP,
    ) -> None:
        # Deliberately does not call CheckLibrary.__init__: the runtime
        # is bound per call, not per instance.
        self.runtime = None
        self.state = state
        self.config = config or CheckConfig()
        self.active_assertions: tuple[str, ...] = ()
        self.checks_performed = 0
        self.probe_bytes = 0
        self.cache_cap = cache_cap
        self._mem_cache: Optional[dict] = {} if cache_cap > 0 else None
        self._space = None
        self._generation = -1
        self.funcptrs: dict = {}
        #: revalidation-cache economics, exported as wrapper.* series
        self.revalidate_hits = 0
        self.revalidate_misses = 0

    # ------------------------------------------------------------------
    def bind(self, runtime) -> None:
        """Bind the context to ``runtime`` for the next program run.

        Re-binding to the same runtime keeps the revalidation cache
        when the address space's mapping generation is unchanged —
        the fast path for call-intensive applications — and clears it
        on any mapping/heap mutation or runtime switch.
        """
        space = runtime.space
        if runtime is self.runtime and space is self._space:
            if space.generation != self._generation:
                self._generation = space.generation
                if self._mem_cache:
                    self._mem_cache.clear()
            return
        self.runtime = runtime
        self._space = space
        self._generation = space.generation
        self.funcptrs = runtime.funcptrs
        if self._mem_cache:
            self._mem_cache.clear()

    # ------------------------------------------------------------------
    def memory_ok(self, pointer: int, size: int, read: bool, write: bool) -> bool:
        """Cache-fronted :meth:`CheckLibrary.memory_ok`.

        Safe to memoize because the decision depends only on the
        mapping table, protections, freed flags, and the heap
        allocation table — all covered by the generation counter —
        never on memory *content*.
        """
        cache = self._mem_cache
        if cache is None:
            return CheckLibrary.memory_ok(self, pointer, size, read, write)
        if pointer == NULL:
            return False
        if size == 0:
            size = 1
        key = (pointer, size, read, write)
        hit = cache.get(key)
        if hit is not None:
            self.revalidate_hits += 1
            return hit
        self.revalidate_misses += 1
        result = CheckLibrary.memory_ok(self, pointer, size, read, write)
        if len(cache) >= self.cache_cap:
            cache.clear()
        cache[key] = result
        return result


@dataclass(frozen=True)
class CheckProgram:
    """A compiled, content-addressable argument-check program.

    ``steps`` run in declaration order (argument checks, then
    executable assertions, then relational buffer plans) and the first
    step returning a violation string short-circuits — exactly the
    interpreter's control flow.
    """

    #: The sharing key (shape + policy + config + assertion/relational
    #: identity); two declarations with equal keys share one program.
    key: tuple
    #: sha256 content address over (PROGRAM_VERSION, key).
    digest: str
    #: assertion names activated while this program runs (consulted by
    #: the OPEN_FILE handler, exactly as the interpreter sets
    #: ``active_assertions`` before dispatching).
    assertions: tuple[str, ...]
    #: ``(arity_bound, step, kind)`` triples; ``kind`` is one of
    #: :data:`STEP_KINDS` and is only consulted by the cost-counting
    #: run path.
    steps: tuple[tuple[int, Step, str], ...]

    def run(
        self,
        args: Sequence,
        ctx: ProgramContext,
        costs: Optional[dict] = None,
    ) -> Optional[str]:
        """Evaluate every step; first violation wins.

        ``costs`` is an optional ``{kind: executions}`` accumulator
        (see :data:`STEP_KINDS`).  The default path is untouched when
        it is None — cost accounting is a separate loop, so disabled
        collection adds zero per-step work.
        """
        ctx.active_assertions = self.assertions
        nargs = len(args)
        if costs is None:
            for arity_bound, step, _kind in self.steps:
                if arity_bound >= nargs:
                    continue
                violation = step(args, ctx)
                if violation is not None:
                    return violation
            return None
        for arity_bound, step, kind in self.steps:
            if arity_bound >= nargs:
                continue
            costs[kind] = costs.get(kind, 0) + 1
            violation = step(args, ctx)
            if violation is not None:
                return violation
        return None


# ----------------------------------------------------------------------
# step compilers
# ----------------------------------------------------------------------


def _compile_argument(index: int, robust) -> Optional[Step]:
    """One argument's full check as a specialized closure.

    Mirrors ``CheckLibrary.check`` (including the counted KeyError →
    unenforceable-type semantics) with the dispatch, bounds, and
    violation string resolved at compile time.
    """
    name = robust.name
    message = f"arg {index}: not in V({robust.render()})"

    if name in _PASS_TYPES:

        def step(args, ctx):
            ctx.checks_performed += 1
            return None

        return step

    spec = _ARRAY_SPECS.get(name)
    if spec is not None:
        read, write, allow_null = spec
        size = robust.param or 1

        def step(args, ctx):
            ctx.checks_performed += 1
            value = args[index]
            if allow_null and value == NULL:
                return None
            return None if ctx.memory_ok(value, size, read, write) else message

        return step

    if name == "NULL":

        def step(args, ctx):
            ctx.checks_performed += 1
            return None if args[index] == NULL else message

        return step

    if name in ("CSTRING", "CSTRING_NULL"):
        allow_null = name.endswith("_NULL")

        def step(args, ctx):
            ctx.checks_performed += 1
            value = args[index]
            if allow_null and value == NULL:
                return None
            return None if ctx.string_length(value) is not None else message

        return step

    if name in ("WRITABLE_STRING", "WRITABLE_STRING_NULL"):
        allow_null = name.endswith("_NULL")

        def step(args, ctx):
            ctx.checks_performed += 1
            value = args[index]
            if allow_null and value == NULL:
                return None
            length = ctx.string_length(value)
            if length is None:
                return message
            return None if ctx.memory_ok(value, length + 1, True, True) else message

        return step

    predicate = _SCALAR_PREDICATES.get(name)
    if predicate is not None:

        def step(args, ctx):
            ctx.checks_performed += 1
            return None if predicate(args[index]) else message

        return step

    if name in ("FUNCPTR", "FUNCPTR_NULL"):
        allow_null = name.endswith("_NULL")

        def step(args, ctx):
            ctx.checks_performed += 1
            value = args[index]
            if allow_null and value == NULL:
                return None
            return None if value in ctx.funcptrs else message

        return step

    # Everything else (FILE/DIR/FD/MODE/FORMAT checks) reuses the
    # interpreter's handler, resolved ONCE here instead of via the
    # per-call f-string getattr dispatch.
    handler = getattr(CheckLibrary, f"_check_{name}", None)
    if handler is None:
        # No checking function: the interpreter counts the check and
        # treats the type as unenforceable (KeyError -> True).

        def step(args, ctx):
            ctx.checks_performed += 1
            return None

        return step

    def step(args, ctx):
        ctx.checks_performed += 1
        return None if handler(ctx, robust, args[index]) else message

    return step


def _compile_minimal(index: int, robust) -> Optional[Step]:
    """The MINIMAL policy's wild-pointer test for one argument
    (mirrors ``WrapperLibrary._minimal_pointer_ok``; not counted, as
    the interpreter never routes it through ``check``)."""
    if robust.family not in POINTER_FAMILIES:
        return None
    message = f"arg {index}: wild pointer"
    null_short = robust.name.endswith("_NULL") or robust.name in (
        "UNCONSTRAINED",
        "NULL",
    )

    def step(args, ctx):
        value = args[index]
        if null_short and value == 0:
            return None
        if ctx.memory_ok(value, 1, True, False) or value == 0:
            return None
        return message

    return step


def _compile_assertion(
    assertion: str, declaration: FunctionDeclaration
) -> Optional[Step]:
    """One executable assertion (section 6 manual-edit plugins) with
    its argument scan hoisted to compile time."""
    if assertion == "track_dir":

        def step(args, ctx):
            if args and not ctx.state.assert_tracked_dir(args[0]):
                return "DIR* was not returned by opendir"
            return None

        return step
    if assertion == "track_file":
        file_index = next(
            (
                i
                for i, arg_decl in enumerate(declaration.arguments)
                if arg_decl.robust_type.family == "file" or "FILE" in arg_decl.ctype
            ),
            None,
        )
        if file_index is None:
            return None
        allow_null = declaration.arguments[file_index].robust_type.name.endswith(
            "_NULL"
        )

        def step(args, ctx):
            if file_index < len(args) and not ctx.state.assert_tracked_file(
                args[file_index], allow_null
            ):
                return "FILE* is not an open stream of this process"
            return None

        return step
    if assertion == "strtok_state":

        def step(args, ctx):
            if args and not ctx.state.assert_strtok_state(ctx.runtime, args[0]):
                return "strtok(NULL, ...) without a saved position"
            return None

        return step
    return None


def _compile_relational(name: str) -> Optional[Step]:
    """The function's relational buffer plans as one step (mirrors
    :func:`~repro.wrapper.relational.relational_violation`)."""
    plans = BUFFER_PLANS.get(name)
    if not plans:
        return None
    compiled = tuple(
        (plan, f"unmeasurable requirement: {plan.description}") for plan in plans
    )

    def step(args, ctx):
        strlen = ctx.string_length
        for plan, unmeasurable in compiled:
            required = plan.capacity(args, strlen)
            if required is None:
                return unmeasurable
            if required <= 0:
                continue
            if not ctx.memory_ok(
                args[plan.buffer_index], required, not plan.write, plan.write
            ):
                return f"violated: {plan.description} (need {required} bytes)"
        return None

    return step


# ----------------------------------------------------------------------
# compilation + the shared program cache
# ----------------------------------------------------------------------


def _track_file_identity(declaration: FunctionDeclaration):
    """The compile-time facts the track_file assertion depends on
    (folded into the sharing key because they derive from ctypes, not
    from the robust-type shape)."""
    if "track_file" not in declaration.assertions:
        return None
    file_index = next(
        (
            i
            for i, arg_decl in enumerate(declaration.arguments)
            if arg_decl.robust_type.family == "file" or "FILE" in arg_decl.ctype
        ),
        None,
    )
    if file_index is None:
        return ()
    return (
        file_index,
        declaration.arguments[file_index].robust_type.name.endswith("_NULL"),
    )


def program_key(
    declaration: FunctionDeclaration,
    config: CheckConfig,
    *,
    minimal: bool,
    relational: bool,
) -> tuple:
    """The sharing key: everything the compiled steps depend on.

    Deliberately excludes the function name except where semantics are
    name-keyed (relational buffer plans), so same-shaped prototypes
    share one program."""
    shape = tuple(
        (argument.robust_type.render(), argument.robust_type.family)
        for argument in declaration.arguments
    )
    relational_key = (
        declaration.name
        if relational and not minimal and BUFFER_PLANS.get(declaration.name)
        else None
    )
    return (
        "minimal" if minimal else "full",
        (config.stateful, config.page_probe, config.page_granularity),
        shape,
        declaration.assertions,
        _track_file_identity(declaration),
        relational_key,
    )


def _argument_kind(robust) -> str:
    """The cost class of one argument check (see :data:`STEP_KINDS`)."""
    name = robust.name
    if name in _PASS_TYPES:
        return "pass"
    if name in _ARRAY_SPECS:
        return "array"
    if name == "NULL":
        return "null"
    if name in (
        "CSTRING", "CSTRING_NULL", "WRITABLE_STRING", "WRITABLE_STRING_NULL"
    ):
        return "string"
    if name in _SCALAR_PREDICATES:
        return "scalar"
    if name in ("FUNCPTR", "FUNCPTR_NULL"):
        return "funcptr"
    return "handler"


def compile_program(
    declaration: FunctionDeclaration,
    config: CheckConfig,
    *,
    minimal: bool,
    relational: bool,
) -> CheckProgram:
    """Compile one declaration into a flattened check program."""
    key = program_key(declaration, config, minimal=minimal, relational=relational)
    steps: list[tuple[int, Step, str]] = []
    for index, argument in enumerate(declaration.arguments):
        robust = argument.robust_type
        if minimal and robust.name not in MINIMAL_CHECKED:
            compiled = _compile_minimal(index, robust)
            kind = "minimal"
        else:
            compiled = _compile_argument(index, robust)
            kind = _argument_kind(robust)
        if compiled is not None:
            # Arity bound: the interpreter zips arguments with the
            # call's args, silently skipping declared arguments beyond
            # the args actually passed.
            steps.append((index, compiled, kind))
    for assertion in declaration.assertions:
        compiled = _compile_assertion(assertion, declaration)
        if compiled is not None:
            steps.append((-1, compiled, "assertion"))
    if relational and not minimal:
        compiled = _compile_relational(declaration.name)
        if compiled is not None:
            steps.append((-1, compiled, "relational"))
    digest = hashlib.sha256(
        repr((PROGRAM_VERSION, key)).encode("utf-8")
    ).hexdigest()
    return CheckProgram(
        key=key,
        digest=digest,
        assertions=declaration.assertions,
        steps=tuple(steps),
    )


_CACHE_LOCK = threading.Lock()
_PROGRAM_CACHE: dict[tuple, CheckProgram] = {}


def program_for(
    declaration: FunctionDeclaration,
    config: CheckConfig,
    *,
    minimal: bool,
    relational: bool,
) -> tuple[CheckProgram, bool]:
    """The shared compiled program for ``declaration``.

    Returns ``(program, shared)`` — ``shared`` is True when a
    same-shaped prototype already compiled it (process-wide, exactly
    like :func:`repro.injector.plan` sharing)."""
    key = program_key(declaration, config, minimal=minimal, relational=relational)
    with _CACHE_LOCK:
        cached = _PROGRAM_CACHE.get(key)
    if cached is not None:
        return cached, True
    program = compile_program(
        declaration, config, minimal=minimal, relational=relational
    )
    with _CACHE_LOCK:
        winner = _PROGRAM_CACHE.setdefault(key, program)
    return winner, winner is not program


def program_cache_size() -> int:
    with _CACHE_LOCK:
        return len(_PROGRAM_CACHE)


def clear_program_cache() -> None:
    """Test hook: drop every shared program."""
    with _CACHE_LOCK:
        _PROGRAM_CACHE.clear()
