"""Relational buffer checks (paper section 5.1).

Per-argument robust types cannot express "the destination must hold
``strlen(src) + 1`` bytes" — the property whose violation is a buffer
overflow.  The paper's wrapper performs these cross-argument bounds
checks using the heap allocation table ("this technique can detect and
prevent heap buffer overflows successfully", citing the authors' heap
fault-containment work [4] and Libsafe [1]).

This module is the reproduction's version of that machinery: a small
plan language giving, per libc function, the buffer argument, the
required capacity expression, and the access direction.  Plans exist
only for the string/stdio/qsort family — the functions whose semantics
the wrapper knows the same way Libsafe knows its string functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.wrapper.checks import CheckLibrary


@dataclass(frozen=True)
class BufferPlan:
    """One relational requirement: argument ``buffer_index`` must be
    accessible for ``capacity(args, strlen)`` bytes."""

    buffer_index: int
    capacity: Callable[[Sequence[int], Callable[[int], Optional[int]]], Optional[int]]
    write: bool = True
    description: str = ""

    def required_bytes(
        self, args: Sequence[int], strlen: Callable[[int], Optional[int]]
    ) -> Optional[int]:
        """None means the requirement cannot be computed (a prior
        per-argument check must already have failed)."""
        return self.capacity(args, strlen)


def _len_plus_1(src_index: int):
    def capacity(args, strlen):
        length = strlen(args[src_index])
        return None if length is None else length + 1

    return capacity


def _cat_capacity(dst_index: int, src_index: int, bound_index: int | None = None):
    def capacity(args, strlen):
        dst_len = strlen(args[dst_index])
        src_len = strlen(args[src_index])
        if dst_len is None or src_len is None:
            return None
        if bound_index is not None:
            src_len = min(src_len, args[bound_index])
        return dst_len + src_len + 1

    return capacity


def _arg(index: int):
    def capacity(args, strlen):
        return args[index]

    return capacity


def _product(a_index: int, b_index: int):
    def capacity(args, strlen):
        return args[a_index] * args[b_index]

    return capacity


#: function name -> relational plans applied before forwarding.
BUFFER_PLANS: dict[str, tuple[BufferPlan, ...]] = {
    "strcpy": (BufferPlan(0, _len_plus_1(1), True, "dst >= strlen(src)+1"),),
    "strncpy": (BufferPlan(0, _arg(2), True, "dst >= n"),),
    "strcat": (BufferPlan(0, _cat_capacity(0, 1), True, "dst >= strlen(dst)+strlen(src)+1"),),
    "strncat": (
        BufferPlan(0, _cat_capacity(0, 1, 2), True, "dst >= strlen(dst)+min(n,strlen(src))+1"),
    ),
    "memcpy": (
        BufferPlan(0, _arg(2), True, "dst >= n"),
        BufferPlan(1, _arg(2), False, "src >= n"),
    ),
    "memmove": (
        BufferPlan(0, _arg(2), True, "dst >= n"),
        BufferPlan(1, _arg(2), False, "src >= n"),
    ),
    "memset": (BufferPlan(0, _arg(2), True, "s >= n"),),
    "memcmp": (
        BufferPlan(0, _arg(2), False, "s1 >= n"),
        BufferPlan(1, _arg(2), False, "s2 >= n"),
    ),
    "memchr": (BufferPlan(0, _arg(2), False, "s >= n"),),
    "strncmp": (),  # bounded by NUL or n; per-arg CSTRING suffices
    "fread": (BufferPlan(0, _product(1, 2), True, "ptr >= size*nmemb"),),
    "fwrite": (BufferPlan(0, _product(1, 2), False, "ptr >= size*nmemb"),),
    "fgets": (BufferPlan(0, _arg(1), True, "s >= n"),),
    "strftime": (BufferPlan(0, _arg(1), True, "s >= max"),),
    "qsort": (BufferPlan(0, _product(1, 2), True, "base >= nmemb*size"),),
    "bsearch": (BufferPlan(1, _product(2, 3), False, "base >= nmemb*size"),),
    "read": (BufferPlan(1, _arg(2), True, "buf >= count"),),
    "write": (BufferPlan(1, _arg(2), False, "buf >= count"),),
    "snprintf": (BufferPlan(0, _arg(1), True, "str >= size"),),
    "getcwd": (),  # size/ERANGE handled inside; NULL buf is legal
}


def relational_violation(
    name: str, args: Sequence[int], checks: CheckLibrary
) -> Optional[str]:
    """Evaluate the function's buffer plans; returns a description of
    the first violated plan, or None when all hold."""
    plans = BUFFER_PLANS.get(name)
    if not plans:
        return None
    for plan in plans:
        required = plan.required_bytes(args, checks.string_length)
        if required is None:
            return f"unmeasurable requirement: {plan.description}"
        if required <= 0:
            continue
        pointer = args[plan.buffer_index]
        read = not plan.write
        if not checks.memory_ok(pointer, required, read, plan.write):
            return f"violated: {plan.description} (need {required} bytes)"
    return None
