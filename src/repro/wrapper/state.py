"""Stateful checking support (paper sections 5.1 and 5.2).

The wrapper "keeps track of memory allocation status on the heap" and
of opaque structures (DIR*, FILE*) handed out by the library.  This
module holds those tables and the interception logic that maintains
them as calls flow through the wrapper.

Heap tracking piggybacks on the simulated heap's allocation table —
the moral equivalent of intercepting malloc/free — while the DIR and
FILE tables are the wrapper's own (they implement the *executable
assertions* added during manual editing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory import NULL
from repro.sandbox.outcome import CallOutcome

#: Default bound on the violation log kept by the LOGGING policy; a
#: long-running hardened application under attack must not grow memory
#: without limit just because it logs.
DEFAULT_LOG_CAP = 1024


@dataclass
class WrapperState:
    """Tables maintained across wrapped calls.

    Attributes:
        dir_table: DIR* values returned by opendir and not yet closed.
        file_table: FILE* values returned by fopen/fdopen/freopen/
            tmpfile and not yet fclosed.
        log: violation log records (used by the logging wrapper),
            bounded to the most recent ``max_log`` entries.
        max_log: ring-buffer capacity for ``log``; 0 means unbounded
            (the pre-PR-9 behaviour, for tests that inspect full logs).
        log_dropped: count of entries evicted once the ring was full.
    """

    dir_table: set[int] = field(default_factory=set)
    file_table: set[int] = field(default_factory=set)
    log: list[str] = field(default_factory=list)
    max_log: int = DEFAULT_LOG_CAP
    log_dropped: int = 0

    # -- interception ----------------------------------------------------
    def observe_call(self, name: str, args: tuple, outcome: CallOutcome) -> None:
        """Update tables after a *forwarded* call returned.

        This is the "switch on wrappers for a potentially larger set
        of functions in order to maintain state information" cost the
        paper mentions: even safe functions like opendir must be
        intercepted once DIR tracking is on.
        """
        if not outcome.returned:
            return
        value = outcome.return_value
        if name == "opendir" and value not in (None, NULL):
            self.dir_table.add(value)
        elif name == "closedir" and args:
            self.dir_table.discard(args[0])
        elif name in ("fopen", "fdopen", "tmpfile") and value not in (None, NULL):
            self.file_table.add(value)
        elif name == "freopen":
            if args and args[2] in self.file_table:
                pass  # stream object unchanged
            elif value not in (None, NULL):
                self.file_table.add(value)
        elif name == "fclose" and args:
            self.file_table.discard(args[0])

    # -- executable assertions (manual-edit plugins) ---------------------
    def assert_tracked_dir(self, pointer: int) -> bool:
        """closedir's argument must "be a directory pointer returned
        by a previous call to opendir" (section 6)."""
        return pointer in self.dir_table

    def assert_tracked_file(self, pointer: int, allow_null: bool = False) -> bool:
        if pointer == NULL:
            return allow_null
        return pointer in self.file_table

    def assert_strtok_state(self, runtime, s: int) -> bool:
        """strtok(NULL, ...) is only valid with a saved scan pointer."""
        return s != NULL or runtime.strtok_state != NULL

    def record_violation(self, function: str, detail: str) -> None:
        if self.max_log > 0 and len(self.log) >= self.max_log:
            # Ring semantics on a plain list (the log stays directly
            # comparable in tests): evict the oldest, count the drop.
            del self.log[0]
            self.log_dropped += 1
        self.log.append(f"{function}: {detail}")

    def seed_file(self, pointer: int) -> None:
        """Register an externally created stream (test harness use)."""
        self.file_table.add(pointer)

    def seed_dir(self, pointer: int) -> None:
        self.dir_table.add(pointer)
