"""The executable robustness wrapper (paper section 5).

A :class:`WrapperLibrary` interposes between an application and the
simulated C library exactly like the generated shared library of the
paper: each wrapped function runs prefix checks derived from its
declaration, returns the declared error code (setting errno) on a
violation, and otherwise forwards to the original function.

The generator supports the paper's wrapper variety (section 2):

* ``ROBUST`` — reject invalid arguments with an error return;
* ``DEBUG`` — abort the application on a violation (debugging phase);
* ``LOGGING`` — like ROBUST, plus a violation log for diagnosis;
* ``MINIMAL`` — only the cheap NULL/invalid-pointer checks;
* ``MEASURE`` — no checks at all, just call counting and timing (the
  measurement wrapper used for Table 2).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.declarations.model import FunctionDeclaration
from repro.libc.catalog import BY_NAME, FunctionSpec
from repro.libc.errno_codes import EINVAL
from repro.libc.runtime import LibcRuntime
from repro.obs.telemetry import NULL_TELEMETRY
from repro.sandbox import CallOutcome, CallStatus, Sandbox
from repro.typelattice.instances import TypeInstance
from repro.wrapper.checks import CheckConfig, CheckLibrary
from repro.wrapper.program import (
    DEFAULT_REVALIDATE_CAP,
    MINIMAL_CHECKED,
    CheckProgram,
    ProgramContext,
    program_for,
)
from repro.wrapper.relational import relational_violation
from repro.wrapper.state import DEFAULT_LOG_CAP, WrapperState

#: Types whose check is cheap enough for the MINIMAL wrapper: it only
#: prevents wild pointers, not content-level problems.  (Definition
#: lives in repro.wrapper.program so the compiler shares it.)
_MINIMAL_CHECKED = MINIMAL_CHECKED


class WrapperPolicy(enum.Enum):
    ROBUST = "robust"
    DEBUG = "debug"
    LOGGING = "logging"
    MINIMAL = "minimal"
    MEASURE = "measure"


@dataclass
class WrapperStats:
    """Counters for the performance evaluation (Table 2)."""

    calls: int = 0
    forwarded: int = 0
    violations: int = 0
    checks: int = 0
    check_seconds: float = 0.0
    library_seconds: float = 0.0
    per_function: dict[str, int] = field(default_factory=dict)
    #: compiled-checker economics (PR 9)
    programs_compiled: int = 0
    program_shares: int = 0
    revalidate_hits: int = 0
    revalidate_misses: int = 0
    batched_calls: int = 0
    #: per-step-class check executions (see
    #: :data:`repro.wrapper.program.STEP_KINDS`); populated only when
    #: the library was built with ``collect_step_costs=True`` — the
    #: default run path never touches it.
    step_costs: dict[str, int] = field(default_factory=dict)

    def record_call(self, name: str) -> None:
        self.calls += 1
        self.per_function[name] = self.per_function.get(name, 0) + 1


class WrapperLibrary:
    """Phase-2 output: the robustness wrapper as a callable object."""

    def __init__(
        self,
        declarations: dict[str, FunctionDeclaration],
        policy: WrapperPolicy = WrapperPolicy.ROBUST,
        check_config: Optional[CheckConfig] = None,
        relational: bool = True,
        wrap_safe: bool = False,
        step_budget: int = 1_000_000,
        telemetry=NULL_TELEMETRY,
        compiled: bool = True,
        revalidate_cache: int = DEFAULT_REVALIDATE_CAP,
        max_log_entries: int = DEFAULT_LOG_CAP,
        collect_step_costs: bool = False,
    ) -> None:
        self.declarations = declarations
        self.policy = policy
        self.check_config = check_config or CheckConfig()
        self.relational = relational
        self.wrap_safe = wrap_safe
        self.telemetry = telemetry
        self.compiled = compiled
        self.collect_step_costs = collect_step_costs
        self.state = WrapperState(max_log=max_log_entries)
        self.stats = WrapperStats()
        #: per-function compiled programs (shared process-wide through
        #: repro.wrapper.program's content-addressed cache)
        self._programs: dict[str, CheckProgram] = {}
        #: the reusable check context; its revalidation cache survives
        #: across calls while the runtime's mapping generation holds
        self._context = ProgramContext(
            self.state, self.check_config, cache_cap=revalidate_cache
        )
        self.sandbox = Sandbox(step_budget=step_budget, telemetry=telemetry)
        #: assertions enabled anywhere force state interception
        self.tracked_assertions: frozenset[str] = frozenset(
            name for decl in declarations.values() for name in decl.assertions
        )
        self._in_flag = False  # the Figure 5 recursion guard

    # ------------------------------------------------------------------
    def call(self, name: str, args: Sequence, runtime: LibcRuntime) -> CallOutcome:
        """Invoke ``name`` through the wrapper."""
        spec = BY_NAME[name]
        self.stats.record_call(name)
        self.telemetry.counter("wrapper.calls").inc()
        declaration = self.declarations.get(name)

        if self._in_flag:
            return self._forward(spec, args, runtime, name)
        self._in_flag = True
        try:
            return self._dispatch(spec, declaration, args, runtime, name)
        finally:
            self._in_flag = False

    def _dispatch(
        self,
        spec: FunctionSpec,
        declaration: Optional[FunctionDeclaration],
        args: Sequence,
        runtime: LibcRuntime,
        name: str,
    ) -> CallOutcome:
        if declaration is None or self.policy is WrapperPolicy.MEASURE:
            return self._forward(spec, args, runtime, name)
        if (
            not declaration.unsafe
            and not declaration.scenario_unsafe
            and not self.wrap_safe
        ):
            # "The wrapper generator creates robustness wrappers only
            # for unsafe functions ... it avoids the overhead of
            # unnecessary argument checks." (section 3.4)  A function
            # the fault-model sweep condemned (unsafe_scenarios) is
            # wrapped too: argument-robust but environment-fragile
            # still earns its prefix checks.
            return self._forward(spec, args, runtime, name)

        started = time.perf_counter()
        violation = self._check_arguments(declaration, args, runtime, name)
        elapsed = time.perf_counter() - started
        self.stats.check_seconds += elapsed
        if self.telemetry.enabled:
            self.telemetry.histogram("wrapper.check_ns", function=name).observe(
                elapsed * 1e9
            )
        if violation is not None:
            return self._reject(declaration, violation, name)
        return self._forward(spec, args, runtime, name)

    # ------------------------------------------------------------------
    # batched / check-only entry points (PR 9)
    # ------------------------------------------------------------------
    def validate(
        self, name: str, args: Sequence, runtime: LibcRuntime
    ) -> Optional[str]:
        """Run only the prefix checks for ``name``: the violation that
        would reject the call, or None when it would be forwarded.

        Never executes the library function, so it is safe to run
        against live state (no heap/file mutations) — the primitive
        behind the service's batch ``validate`` op.
        """
        declaration = self.declarations.get(name)
        if declaration is None or self.policy is WrapperPolicy.MEASURE:
            return None
        if (
            not declaration.unsafe
            and not declaration.scenario_unsafe
            and not self.wrap_safe
        ):
            return None
        started = time.perf_counter()
        try:
            return self._check_arguments(declaration, args, runtime, name)
        finally:
            self.stats.check_seconds += time.perf_counter() - started

    def validate_many(
        self, calls: Sequence[tuple[str, Sequence]], runtime: LibcRuntime
    ) -> list[Optional[str]]:
        """Check-only twin of :meth:`call_many`."""
        with self.telemetry.span("wrapper.validate_many", count=len(calls)):
            return [self.validate(name, args, runtime) for name, args in calls]

    def call_many(
        self, calls: Sequence[tuple[str, Sequence]], runtime: LibcRuntime
    ) -> list[CallOutcome]:
        """Invoke a batch of ``(name, args)`` calls through the wrapper.

        One entry point for many calls amortizes per-request costs all
        the way up the stack: the service's ``validate`` op admits a
        whole batch under a single admission ticket, and the compiled
        checker's revalidation cache stays warm across the batch.
        """
        self.stats.batched_calls += len(calls)
        self.telemetry.counter("wrapper.batch_calls").inc()
        with self.telemetry.span("wrapper.batch", count=len(calls)):
            return [self.call(name, args, runtime) for name, args in calls]

    # ------------------------------------------------------------------
    def _check_arguments(
        self,
        declaration: FunctionDeclaration,
        args: Sequence,
        runtime: LibcRuntime,
        name: str,
    ) -> Optional[str]:
        if self.compiled:
            return self._check_arguments_compiled(declaration, args, runtime, name)
        return self._check_arguments_interpreted(declaration, args, runtime, name)

    def _program_for(self, name: str, declaration: FunctionDeclaration) -> CheckProgram:
        program = self._programs.get(name)
        if program is None:
            program, shared = program_for(
                declaration,
                self.check_config,
                minimal=self.policy is WrapperPolicy.MINIMAL,
                relational=self.relational,
            )
            self._programs[name] = program
            if shared:
                self.stats.program_shares += 1
            else:
                self.stats.programs_compiled += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "wrapper.programs", result="shared" if shared else "compiled"
                ).inc()
        return program

    def _check_arguments_compiled(
        self,
        declaration: FunctionDeclaration,
        args: Sequence,
        runtime: LibcRuntime,
        name: str,
    ) -> Optional[str]:
        program = self._program_for(name, declaration)
        ctx = self._context
        ctx.bind(runtime)
        ctx.checks_performed = 0
        ctx.revalidate_hits = 0
        ctx.revalidate_misses = 0
        costs = {} if self.collect_step_costs else None
        try:
            return program.run(args, ctx, costs)
        finally:
            self.stats.checks += ctx.checks_performed
            self.stats.revalidate_hits += ctx.revalidate_hits
            self.stats.revalidate_misses += ctx.revalidate_misses
            if costs:
                step_costs = self.stats.step_costs
                emit = self.telemetry.enabled
                for kind, count in costs.items():
                    step_costs[kind] = step_costs.get(kind, 0) + count
                    if emit:
                        self.telemetry.counter(
                            "wrapper.step_cost", kind=kind
                        ).inc(count)

    def _check_arguments_interpreted(
        self,
        declaration: FunctionDeclaration,
        args: Sequence,
        runtime: LibcRuntime,
        name: str,
    ) -> Optional[str]:
        checks = CheckLibrary(runtime, self.state, self.check_config)
        checks.active_assertions = declaration.assertions
        try:
            for index, (argument, value) in enumerate(
                zip(declaration.arguments, args)
            ):
                robust = argument.robust_type
                if (
                    self.policy is WrapperPolicy.MINIMAL
                    and robust.name not in _MINIMAL_CHECKED
                ):
                    if not self._minimal_pointer_ok(robust, value, checks):
                        return f"arg {index}: wild pointer"
                    continue
                try:
                    ok = checks.check(robust, value)
                except KeyError:
                    ok = True  # no checking function: type is unenforceable
                if not ok:
                    return f"arg {index}: not in V({robust.render()})"
            for assertion in declaration.assertions:
                failure = self._run_assertion(assertion, declaration, args, runtime)
                if failure is not None:
                    return failure
            if self.relational and self.policy is not WrapperPolicy.MINIMAL:
                violation = relational_violation(name, list(args), checks)
                if violation is not None:
                    return violation
            return None
        finally:
            self.stats.checks += checks.checks_performed

    @staticmethod
    def _minimal_pointer_ok(
        robust: TypeInstance, value, checks: CheckLibrary
    ) -> bool:
        """MINIMAL policy: only reject NULL/unmapped pointers for
        pointer-typed arguments."""
        pointer_families = ("ptr", "file", "dir", "string", "funcptr")
        if robust.family not in pointer_families:
            return True
        if robust.name.endswith("_NULL") or robust.name in ("UNCONSTRAINED", "NULL"):
            if value == 0:
                return True
        return checks.memory_ok(value, 1, True, False) or value == 0

    def _run_assertion(
        self,
        assertion: str,
        declaration: FunctionDeclaration,
        args: Sequence,
        runtime: LibcRuntime,
    ) -> Optional[str]:
        """Executable assertions from the manual edits (section 6)."""
        if assertion == "track_dir":
            if args and not self.state.assert_tracked_dir(args[0]):
                return "DIR* was not returned by opendir"
        elif assertion == "track_file":
            index = next(
                (
                    i
                    for i, arg_decl in enumerate(declaration.arguments)
                    if arg_decl.robust_type.family == "file"
                    or "FILE" in arg_decl.ctype
                ),
                None,
            )
            if index is not None and index < len(args):
                allow_null = declaration.arguments[index].robust_type.name.endswith(
                    "_NULL"
                )
                if not self.state.assert_tracked_file(args[index], allow_null):
                    return "FILE* is not an open stream of this process"
        elif assertion == "strtok_state":
            if args and not self.state.assert_strtok_state(runtime, args[0]):
                return "strtok(NULL, ...) without a saved position"
        return None

    # ------------------------------------------------------------------
    def _reject(
        self, declaration: FunctionDeclaration, violation: str, name: str
    ) -> CallOutcome:
        """Prefix-code rejection: set errno, return the error code."""
        self.stats.violations += 1
        self.telemetry.counter("wrapper.violations", function=name).inc()
        self.telemetry.event("wrapper.violation", function=name, detail=violation)
        if self.policy in (WrapperPolicy.LOGGING, WrapperPolicy.DEBUG):
            self.state.record_violation(name, violation)
        if self.policy is WrapperPolicy.DEBUG:
            return CallOutcome(
                CallStatus.ABORTED, detail=f"wrapper abort: {name}: {violation}"
            )
        errno = declaration.errnos[0] if declaration.errnos else EINVAL
        return CallOutcome(
            CallStatus.RETURNED, return_value=declaration.error_value, errno=errno
        )

    def _forward(
        self, spec: FunctionSpec, args: Sequence, runtime: LibcRuntime, name: str
    ) -> CallOutcome:
        started = time.perf_counter()
        outcome = self.sandbox.call(spec.model, args, runtime)
        self.stats.library_seconds += time.perf_counter() - started
        self.stats.forwarded += 1
        if self.tracked_assertions:
            self.state.observe_call(name, tuple(args), outcome)
        return outcome
