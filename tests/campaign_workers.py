"""Module-level worker callables for the scheduler tests.

The pool pickles its worker callable, so these must live in an
importable module rather than inside a test function.
"""

from __future__ import annotations

import os
import random
import time


def echo(name: str) -> dict:
    """Succeeds immediately; used for happy-path pool tests."""
    return {"name": name}


def misbehave(name: str) -> dict:
    """Fails in the mode its task name selects."""
    if name.startswith("boom"):
        raise RuntimeError(f"kaboom {name}")
    if name.startswith("hang"):
        time.sleep(120)
    if name.startswith("die"):
        os._exit(9)
    return {"name": name}


def slow_first(name: str) -> dict:
    """The lexically-first task sleeps; later tasks finish before it,
    inverting completion order relative to submission order."""
    if name.endswith("0"):
        time.sleep(0.5)
    return {"name": name}


def draw(name: str) -> dict:
    """Returns randomness drawn after the scheduler's per-task reseed,
    proving results do not depend on worker or completion order."""
    return {"name": name, "value": random.random()}
