"""Shared fixtures.

``declarations86`` loads (or generates once) the cached declarations
for the full 86-function evaluation set, so integration tests do not
re-run fault injection per test.
"""

from __future__ import annotations

import pytest

from repro.core.cache import DEFAULT_CACHE, load_or_generate
from repro.libc.runtime import standard_runtime
from repro.sandbox import Sandbox


@pytest.fixture()
def runtime():
    return standard_runtime()


@pytest.fixture()
def sandbox():
    return Sandbox()


@pytest.fixture(scope="session")
def hardened86():
    """The full pipeline output over the 86-function set (cached)."""
    return load_or_generate(path=DEFAULT_CACHE)


@pytest.fixture(scope="session")
def declarations86(hardened86):
    return hardened86.declarations
