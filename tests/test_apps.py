"""Tests for the synthetic application workloads (Table 2 substrate)."""

import pytest

from repro.apps import (
    ALL_APPS,
    GccApp,
    GzipApp,
    Ps2pdfApp,
    TarApp,
    run_application,
    table2_row,
)
from repro.wrapper import WrapperPolicy


@pytest.fixture(scope="module")
def declarations(hardened86):
    return hardened86.declarations


class TestWorkloadsRun:
    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_runs_unwrapped_without_failures(self, app_cls):
        metrics = run_application(app_cls(), wrapped=False)
        assert metrics.libc_calls > 0
        assert metrics.wall_seconds > 0
        assert 0 <= metrics.library_fraction <= 1

    @pytest.mark.parametrize("app_cls", ALL_APPS)
    def test_runs_through_robust_wrapper(self, app_cls, declarations):
        metrics = run_application(app_cls(), declarations, WrapperPolicy.ROBUST)
        assert metrics.libc_calls > 0
        assert metrics.check_seconds >= 0

    def test_tar_archives_all_files(self, declarations):
        from repro.libc.runtime import standard_runtime

        runtime_holder = {}

        def factory():
            runtime_holder["rt"] = standard_runtime()
            return runtime_holder["rt"]

        app = TarApp(files=3, blocks_per_file=2)
        run_application(app, declarations, WrapperPolicy.ROBUST, runtime_factory=factory)
        archive = runtime_holder["rt"].kernel.lookup("/tmp/tar/archive.tar")
        assert len(archive.data) == 3 * 2 * 512

    def test_gcc_runs_five_processes(self, declarations):
        assert GccApp.profile.processes == 5
        small = GccApp(tokens=5)
        metrics = run_application(small, declarations, WrapperPolicy.MEASURE)
        # five processes' worth of per-token calls
        single = run_application(
            GccApp(tokens=5), wrapped=False
        )
        assert metrics.libc_calls == single.libc_calls


class TestCallProfiles:
    """The orderings that make Table 2's shape."""

    @pytest.fixture(scope="class")
    def metrics(self, declarations):
        return {
            app_cls.profile.name: run_application(
                _small(app_cls), declarations, WrapperPolicy.MEASURE
            )
            for app_cls in ALL_APPS
        }

    def test_gzip_has_lowest_call_rate(self, metrics):
        gzip_rate = metrics["gzip"].calls_per_second
        for name in ("tar", "gcc", "ps2pdf"):
            assert gzip_rate < metrics[name].calls_per_second

    def test_gcc_has_highest_call_rate(self, metrics):
        gcc_rate = metrics["gcc"].calls_per_second
        for name in ("tar", "gzip"):
            assert gcc_rate > metrics[name].calls_per_second

    def test_library_time_ordering(self, metrics):
        assert metrics["gzip"].library_fraction < metrics["tar"].library_fraction
        assert metrics["tar"].library_fraction < metrics["gcc"].library_fraction


class TestTable2Row:
    def test_row_shape_and_sanity(self, declarations):
        row = table2_row(TarApp(files=3, blocks_per_file=2), declarations, repeats=1)
        data = row.as_dict()
        assert data["app"] == "tar"
        assert data["wrapped_calls_per_sec"] > 0
        assert 0 <= data["time_in_library_pct"] <= 100
        assert data["checking_overhead_pct"] >= 0
        assert data["execution_overhead_pct"] >= 0


def _small(app_cls):
    if app_cls is TarApp:
        return TarApp(files=3, blocks_per_file=2)
    if app_cls is GzipApp:
        return GzipApp(blocks=2)
    if app_cls is GccApp:
        return GccApp(tokens=40)
    return Ps2pdfApp(operators=80)
