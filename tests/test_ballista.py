"""Tests for the Ballista-style robustness test harness."""

import pytest

from repro.ballista import BallistaHarness, pool_for, STRING_POOL, FILE_POOL
from repro.cdecl import DeclarationParser, typedef_table
from repro.libc.catalog import BY_NAME
from repro.libc.runtime import standard_runtime


@pytest.fixture(scope="module")
def small_harness():
    specs = [BY_NAME[n] for n in ("asctime", "strlen", "strcmp", "fclose")]
    return BallistaHarness(functions=specs)


class TestEnumeration:
    def test_tests_are_deterministic(self, small_harness):
        first = [t.label for t in small_harness.tests()]
        again = [t.label for t in BallistaHarness(
            functions=[BY_NAME[n] for n in ("asctime", "strlen", "strcmp", "fclose")]
        ).tests()]
        assert first == again

    def test_every_test_has_an_exceptional_value(self, small_harness):
        for test in small_harness.tests():
            assert any(v.exceptional for v in test.values), test.label

    def test_cap_respected(self):
        harness = BallistaHarness(
            functions=[BY_NAME["fwrite"]], test_cap=50
        )
        assert len(harness.tests()) == 50

    def test_total_target_thins_globally(self):
        specs = [BY_NAME[n] for n in ("strcmp", "strcpy", "strcat")]
        full = len(BallistaHarness(functions=specs).tests())
        target = full - 37
        harness = BallistaHarness(functions=specs, total_target=target)
        assert len(harness.tests()) == target

    def test_pool_selection_mirrors_injector(self):
        parser = DeclarationParser(typedef_table())
        proto = parser.parse_prototype(BY_NAME["fclose"].prototype)
        param = proto.ftype.parameters[0]
        pool = pool_for(param, parser.resolve(param.ctype), param.ctype)
        assert pool is FILE_POOL
        proto = parser.parse_prototype(BY_NAME["strlen"].prototype)
        param = proto.ftype.parameters[0]
        pool = pool_for(param, parser.resolve(param.ctype), param.ctype)
        assert pool is STRING_POOL


class TestExecution:
    def test_unwrapped_run_classifies_outcomes(self, small_harness):
        report = small_harness.run()
        assert report.total == len(small_harness.tests())
        assert report.count("crash") > 0
        assert report.count("errno") > 0
        counted = sum(report.count(s) for s in ("crash", "errno", "silent"))
        assert counted == report.total

    def test_crash_rate_properties(self, small_harness):
        report = small_harness.run()
        assert 0 < report.crash_rate < 1
        assert abs(report.crash_rate + report.errno_rate + report.silent_rate - 1) < 1e-9

    def test_crashing_functions_subset(self, small_harness):
        report = small_harness.run()
        names = {"asctime", "strlen", "strcmp", "fclose"}
        assert set(report.crashing_functions()) <= names
        by_function = report.crashes_by_function()
        assert sum(by_function.values()) == report.count("crash")

    def test_summary_row_shape(self, small_harness):
        row = small_harness.run().summary_row()
        assert set(row) == {
            "configuration", "tests", "errno_set_pct", "silent_pct",
            "crash_pct", "crashing_functions",
        }

    def test_runs_are_isolated(self, small_harness):
        """Two runs over the same harness give identical results —
        crashes in one test never poison another."""
        first = small_harness.run().summary_row()
        second = small_harness.run().summary_row()
        assert first == second


class TestWrappedExecution:
    @pytest.fixture(scope="class")
    def wrapped_setup(self):
        from repro.core import HealersPipeline

        names = ["asctime", "strlen", "strcmp", "fclose"]
        hardened = HealersPipeline(functions=names).run()
        harness = BallistaHarness(functions=[BY_NAME[n] for n in names])
        return hardened, harness

    def test_wrapper_reduces_crashes(self, wrapped_setup):
        hardened, harness = wrapped_setup
        unwrapped = harness.run()
        wrapped = harness.run(wrapper=hardened.wrapper(), configuration="full")
        assert wrapped.crash_rate < unwrapped.crash_rate / 4
        assert wrapped.errno_rate > unwrapped.errno_rate

    def test_semi_auto_eliminates_all_crashes(self, wrapped_setup):
        hardened, harness = wrapped_setup
        semi = harness.run(wrapper=hardened.wrapper(semi_auto=True))
        assert semi.count("crash") == 0

    def test_valid_values_still_work_through_wrapper(self, wrapped_setup):
        """The wrapper must not reject the genuinely valid test
        combinations (no false aborts of correct calls)."""
        hardened, harness = wrapped_setup
        wrapped = harness.run(wrapper=hardened.wrapper(semi_auto=True))
        for record in wrapped.records:
            if all(not v.exceptional for v in record.test.values):
                assert record.status != "crash"
