"""Tests for the bit-flip fault injection campaign (section 9's
future work, implemented)."""

import pytest

from repro.core import HealersPipeline
from repro.injector import BitFlipCampaign, FlipSpec, GOLDEN_CALLS, enumerate_flips
from repro.libc.runtime import standard_runtime


@pytest.fixture(scope="module")
def hardened():
    return HealersPipeline(functions=["asctime", "strcpy", "fclose", "closedir"]).run()


class TestEnumeration:
    def test_flip_count_formula(self):
        flips = enumerate_flips([0x1000, 0x2000], [16, 0], memory_stride=8)
        value_flips = 2 * 64
        memory_flips = 16 * 8 // 8
        assert len(flips) == value_flips + memory_flips

    def test_specs_are_descriptive(self):
        spec = FlipSpec(1, "memory", 13)
        assert spec.describe() == "arg1:memory:bit13"

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            BitFlipCampaign("nonexistent_function")

    def test_golden_calls_are_actually_valid(self):
        """Every golden call must succeed un-flipped — otherwise the
        campaign measures a broken baseline."""
        from repro.libc.catalog import BY_NAME
        from repro.sandbox import Sandbox

        for name, golden in GOLDEN_CALLS.items():
            runtime = standard_runtime()
            args, _ = golden(runtime)
            outcome = Sandbox().call(BY_NAME[name].model, args, runtime)
            assert outcome.returned and not outcome.errno_was_set, name


class TestCampaign:
    def test_unwrapped_flips_crash_substantially(self):
        report = BitFlipCampaign("asctime").run()
        assert report.total == 64 + 44  # 64 value bits + 44 byte flips
        assert report.crash_rate > 0.3

    def test_value_flips_fully_stopped_by_wrapper(self, hardened):
        """A flipped pointer/scalar either still satisfies the robust
        type (harmless) or is rejected — never a crash."""
        for name in ("asctime", "strcpy"):
            campaign = BitFlipCampaign(name)
            report = campaign.run(wrapper=hardened.wrapper(semi_auto=True))
            value_crashes = [
                r for r in report.results
                if r.status == "crash" and r.spec.kind == "value"
            ]
            assert value_crashes == [], name

    def test_wrapper_reduces_overall_crash_rate(self, hardened):
        campaign = BitFlipCampaign("closedir")
        unwrapped = campaign.run()
        semi = campaign.run(
            wrapper=hardened.wrapper(semi_auto=True), configuration="semi"
        )
        assert semi.crash_rate < unwrapped.crash_rate / 3

    def test_residual_crashes_are_internal_structure_flips(self, hardened):
        """Flips *inside* an opaque structure (FILE buffer pointer)
        evade even the stateful wrapper — the same integrity gap the
        paper concedes for corrupted structures."""
        campaign = BitFlipCampaign("fclose")
        report = campaign.run(wrapper=hardened.wrapper(semi_auto=True))
        for result in report.results:
            if result.status == "crash":
                assert result.spec.kind == "memory"

    def test_summary_row_is_complete(self, hardened):
        report = BitFlipCampaign("strlen").run()
        row = report.summary_row()
        assert row["flips"] == report.total
        assert (
            pytest.approx(row["crash_pct"] + row["errno_pct"] + row["silent_pct"], abs=0.1)
            == 100.0
        )

    def test_campaign_is_deterministic(self):
        first = BitFlipCampaign("strlen").run()
        second = BitFlipCampaign("strlen").run()
        assert [r.status for r in first.results] == [r.status for r in second.results]
