"""CLI coverage for the campaign engine: the `campaign` command plus
the --jobs/--cache-dir/--resume/--json flags on inject/harden/ballista."""

import json
import re
from pathlib import Path

from repro.cli import main


class TestCampaignCommand:
    def test_run_status_clean_cycle(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "abs", "labs", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "ran" in out
        assert "manifest:" in out

        # Warm re-run: everything served from the outcome store.
        assert main(
            ["campaign", "run", "abs", "labs", "--cache-dir", cache, "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cached"] == 2
        assert doc["ran"] == 0
        assert doc["failed"] == {}
        assert list(doc["functions"]) == ["abs", "labs"]
        assert all(f["digest"] for f in doc["functions"].values())

        assert main(["campaign", "status", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "cached" in out
        assert "stored outcomes: 2" in out

        assert main(["campaign", "status", "--cache-dir", cache, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stored_outcomes"] == 2
        assert [f["name"] for f in doc["functions"]] == ["abs", "labs"]

        # A corrupt entry (crashed writer) is swept along with real ones.
        outcomes = Path(cache) / "outcomes"
        (outcomes / ("f" * 64 + ".json")).write_text("{not json")
        (outcomes / ".orphan.json.tmp").write_text("partial write")

        assert main(
            ["campaign", "clean", "--cache-dir", cache, "--dry-run"]
        ) == 0
        preview = capsys.readouterr().out
        match = re.search(r"would remove (\d+) entries \((\d+) bytes\)", preview)
        assert match, preview
        assert int(match.group(1)) == 5  # 2 outcomes + corrupt + tmp + manifest
        assert int(match.group(2)) > 0
        assert main(["campaign", "status", "--cache-dir", cache]) == 0
        capsys.readouterr()  # dry run removed nothing

        assert main(["campaign", "clean", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert f"removed 5 entries ({match.group(2)} bytes)" in out
        assert main(["campaign", "status", "--cache-dir", cache]) == 2
        assert "no campaign manifest" in capsys.readouterr().err

    def test_resume_flag_continues_checkpoint(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["campaign", "run", "abs", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "run", "abs", "labs",
             "--cache-dir", cache, "--resume", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["functions"]["abs"]["status"] == "cached"
        assert doc["functions"]["labs"]["status"] == "ran"

    def test_run_rejects_unknown_function(self, tmp_path, capsys):
        assert main(
            ["campaign", "run", "no_such_fn", "--cache-dir", str(tmp_path)]
        ) == 2
        assert "unknown functions" in capsys.readouterr().err


class TestHardenCampaignFlags:
    def test_json_summary(self, tmp_path, capsys):
        assert main(
            ["harden", "abs", "labs", "-o", str(tmp_path / "out"), "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) >= {
            "output", "unsafe", "safe", "failed",
            "elapsed_seconds", "phase_timings", "totals",
        }
        assert doc["failed"] == {}
        assert sorted(doc["unsafe"] + doc["safe"]) == ["abs", "labs"]
        assert doc["totals"]["vectors"] > 0
        assert "total" in doc["phase_timings"]

    def test_parallel_harden_byte_identical_to_serial(self, tmp_path, capsys):
        functions = ["abs", "labs", "asctime"]
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        assert main(["harden", *functions, "-o", str(serial)]) == 0
        assert main(
            ["harden", *functions, "-o", str(parallel),
             "--jobs", "2", "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        capsys.readouterr()
        for artifact in ("declarations.xml", "healers_wrapper.c",
                         "healers_checks.h"):
            assert (serial / artifact).read_bytes() == (
                parallel / artifact
            ).read_bytes()


class TestInjectCampaignFlags:
    def test_cached_rerun_matches_fresh(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["inject", "abs", "--jobs", "2", "--cache-dir", cache, "--json"]
        ) == 0
        fresh = json.loads(capsys.readouterr().out)
        assert main(["inject", "abs", "--cache-dir", cache, "--json"]) == 0
        cached = json.loads(capsys.readouterr().out)
        assert cached == fresh
        assert fresh[0]["function"] == "abs"


class TestBallistaCampaignFlags:
    def test_json_summary(self, capsys):
        assert main(["ballista", "strlen", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tests"] > 0
        labels = [row["configuration"] for row in doc["configurations"]]
        assert labels == ["unwrapped", "full-auto", "semi-auto"]
        assert all("crash_pct" in row for row in doc["configurations"])

    def test_parallel_evaluation(self, capsys):
        assert main(
            ["ballista", "strlen", "abs", "--unwrapped-only",
             "--json", "--jobs", "2"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tests"] > 0
        assert doc["configurations"][0]["configuration"] == "unwrapped"
