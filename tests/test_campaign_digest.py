"""Tests for campaign content addressing (repro.campaign.digest)."""

import dataclasses

from repro.campaign import (
    campaign_id,
    generator_fingerprint,
    outcome_digest,
    spec_fingerprint,
)
from repro.libc.catalog import BY_NAME


class TestOutcomeDigest:
    def test_stable_across_calls(self):
        spec = BY_NAME["strcpy"]
        assert outcome_digest(spec) == outcome_digest(spec)

    def test_is_a_sha256_hex(self):
        digest = outcome_digest(BY_NAME["abs"])
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_distinct_functions_distinct_digests(self):
        digests = {outcome_digest(BY_NAME[n]) for n in ("abs", "labs", "strcpy")}
        assert len(digests) == 3

    def test_prototype_change_invalidates(self):
        spec = BY_NAME["abs"]
        changed = dataclasses.replace(spec, prototype="long abs(long j);")
        assert outcome_digest(changed) != outcome_digest(spec)

    def test_version_change_invalidates(self):
        spec = BY_NAME["abs"]
        changed = dataclasses.replace(spec, version="GLIBC_2.3")
        assert outcome_digest(changed) != outcome_digest(spec)

    def test_injector_cap_change_invalidates(self):
        spec = BY_NAME["strcpy"]
        assert outcome_digest(spec, max_vectors=10) != outcome_digest(spec)
        assert outcome_digest(spec, max_retries=1) != outcome_digest(spec)

    def test_lattice_version_change_invalidates(self):
        spec = BY_NAME["strcpy"]
        assert outcome_digest(spec, lattice_version="other") != outcome_digest(spec)

    def test_generator_config_change_invalidates(self, monkeypatch):
        # A different generator selection (here: a different template
        # sequence for strcpy's prototype) must change the digest even
        # though the spec is untouched.
        spec = BY_NAME["strcpy"]
        baseline = outcome_digest(spec)
        import repro.campaign.digest as digest_mod

        original = digest_mod.generator_fingerprint
        monkeypatch.setattr(
            digest_mod,
            "generator_fingerprint",
            lambda s, parser=None: original(s, parser) + [["EXTRA_TEMPLATE"]],
        )
        assert outcome_digest(spec) != baseline


class TestFingerprints:
    def test_spec_fingerprint_names_the_model(self):
        fingerprint = spec_fingerprint(BY_NAME["strcpy"])
        assert fingerprint["name"] == "strcpy"
        assert fingerprint["model"].endswith("libc_strcpy")

    def test_generator_fingerprint_matches_arity(self):
        assert len(generator_fingerprint(BY_NAME["strcpy"])) == 2
        assert generator_fingerprint(BY_NAME["abs"])  # one int argument
        labels = generator_fingerprint(BY_NAME["strcpy"])[0]
        assert labels and all(isinstance(label, str) for label in labels)


class TestCampaignId:
    def test_order_sensitive(self):
        a = campaign_id([("abs", "d1"), ("labs", "d2")])
        b = campaign_id([("labs", "d2"), ("abs", "d1")])
        assert a != b

    def test_digest_sensitive(self):
        assert campaign_id([("abs", "d1")]) != campaign_id([("abs", "d2")])
