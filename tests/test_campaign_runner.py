"""Tests for the campaign runner: caching, resume, ordering, failure
policy, and the pipeline integration."""

import pytest

import repro.campaign.runner as runner_mod
from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    TaskResult,
    clean_cache,
    load_manifest,
)
from repro.core.pipeline import HealersPipeline
from repro.libc.catalog import BALLISTA_SET
from repro.sandbox import Sandbox

FNS = ["abs", "labs", "asctime"]


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted, uncached, serial campaign."""
    return CampaignRunner(FNS, CampaignConfig()).run()


class TestCampaignRunner:
    def test_serial_run_in_catalog_order(self, baseline):
        assert list(baseline.reports) == FNS
        assert list(baseline.outcomes) == FNS
        assert all(o.status == "ran" for o in baseline.outcomes.values())
        assert baseline.ran == len(FNS)
        assert baseline.cache_hits == 0
        assert baseline.failed == {}

    def test_parallel_matches_serial(self, baseline):
        parallel = CampaignRunner(FNS, CampaignConfig(jobs=2)).run()
        assert list(parallel.reports) == FNS
        assert parallel.reports == baseline.reports
        assert parallel.campaign == baseline.campaign

    def test_phase_timings_recorded(self, baseline):
        assert {"plan", "cache", "inject", "finalize", "total"} <= set(
            baseline.phase_timings
        )
        assert baseline.phase_timings["total"] >= baseline.phase_timings["inject"]

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError, match="no_such_fn"):
            CampaignRunner(["abs", "no_such_fn"])

    def test_default_function_set(self):
        runner = CampaignRunner()
        assert [s.name for s in runner.specs] == [s.name for s in BALLISTA_SET]

    def test_warm_cache_serves_without_sandbox(
        self, tmp_path, monkeypatch, baseline
    ):
        cold = CampaignRunner(FNS, CampaignConfig(cache_dir=tmp_path)).run()
        assert cold.ran == len(FNS)
        assert cold.reports == baseline.reports

        def poisoned(*args, **kwargs):
            raise AssertionError("sandbox touched on a warm cache")

        monkeypatch.setattr(Sandbox, "call", poisoned)
        warm = CampaignRunner(FNS, CampaignConfig(cache_dir=tmp_path)).run()
        assert warm.cache_hits == len(FNS)
        assert warm.ran == 0
        assert warm.reports == baseline.reports
        assert list(warm.reports) == FNS

    def test_resume_after_simulated_kill(self, tmp_path, baseline):
        # Simulate a campaign killed after two functions: the store
        # holds their outcomes, the manifest checkpoints an incomplete
        # run. The resumed full campaign serves those from cache, runs
        # only the remainder, and ends identical to an uninterrupted
        # campaign.
        interrupted = CampaignRunner(
            FNS[:2], CampaignConfig(cache_dir=tmp_path)
        ).run()
        assert interrupted.ran == 2
        assert load_manifest(tmp_path) is not None

        resumed = CampaignRunner(
            FNS, CampaignConfig(cache_dir=tmp_path, resume=True)
        ).run()
        statuses = {n: o.status for n, o in resumed.outcomes.items()}
        assert statuses == {"abs": "cached", "labs": "cached", "asctime": "ran"}
        assert resumed.reports == baseline.reports
        assert list(resumed.reports) == FNS

        manifest = load_manifest(tmp_path)
        assert manifest["campaign"] == resumed.campaign
        assert [f["name"] for f in manifest["functions"]] == FNS
        assert all(f["status"] in ("cached", "ran") for f in manifest["functions"])

    def test_failed_function_does_not_abort_campaign(self, monkeypatch):
        real = runner_mod._inject_payload

        def flaky(name, max_vectors=1200, fault_models=(), sampling=None):
            if name == "labs":
                raise RuntimeError("injector exploded")
            return real(
                name,
                max_vectors=max_vectors,
                fault_models=fault_models,
                sampling=sampling,
            )

        monkeypatch.setattr(runner_mod, "_inject_payload", flaky)
        result = CampaignRunner(
            ["abs", "labs"], CampaignConfig(task_retries=0)
        ).run()
        assert result.outcomes["abs"].status == "ran"
        assert result.outcomes["labs"].status == "failed"
        assert "injector exploded" in result.outcomes["labs"].error
        assert set(result.failed) == {"labs"}
        assert "labs" not in result.reports

    def test_output_order_independent_of_completion_order(self, monkeypatch):
        # Deterministically simulate an adversarial pool that reports
        # completions in reverse: the result must still come out in
        # catalog (request) order.
        def reversed_pool(names, worker, on_result=None, **kwargs):
            results = {}
            for name in reversed(list(names)):
                result = TaskResult(name, "ok", payload=worker(name))
                results[name] = result
                if on_result is not None:
                    on_result(result)
            return results

        monkeypatch.setattr(runner_mod, "run_tasks", reversed_pool)
        completions = []
        result = CampaignRunner(
            FNS, progress=lambda name, outcome, report: completions.append(name)
        ).run()
        assert completions == list(reversed(FNS))
        assert list(result.reports) == FNS
        assert list(result.outcomes) == FNS

    def test_clean_cache(self, tmp_path):
        CampaignRunner(["abs"], CampaignConfig(cache_dir=tmp_path)).run()
        assert load_manifest(tmp_path) is not None
        preview = clean_cache(tmp_path, dry_run=True)
        assert preview.files == 2  # one outcome + the manifest
        assert preview.bytes_reclaimed > 0
        assert preview.dry_run
        assert load_manifest(tmp_path) is not None  # dry run removed nothing
        stats = clean_cache(tmp_path)
        assert (stats.files, stats.bytes_reclaimed) == (
            preview.files, preview.bytes_reclaimed
        )
        assert not stats.dry_run
        assert load_manifest(tmp_path) is None


class TestPipelineCampaign:
    def test_campaign_pipeline_matches_serial(self, tmp_path):
        functions = ["abs", "asctime"]
        serial = HealersPipeline(functions=functions).run()
        campaign = HealersPipeline(
            functions=functions, jobs=2, cache_dir=tmp_path
        ).run()
        assert list(campaign.declarations) == list(serial.declarations)
        assert {n: d.to_xml() for n, d in campaign.declarations.items()} == {
            n: d.to_xml() for n, d in serial.declarations.items()
        }
        assert campaign.failed_functions == {}
        assert "inject" in campaign.phase_timings
        assert "total" in serial.phase_timings

    def test_campaign_pipeline_reports_failures(self, monkeypatch):
        real = runner_mod._inject_payload

        def flaky(name, max_vectors=1200, fault_models=(), sampling=None):
            if name == "labs":
                raise RuntimeError("injector exploded")
            return real(
                name,
                max_vectors=max_vectors,
                fault_models=fault_models,
                sampling=sampling,
            )

        monkeypatch.setattr(runner_mod, "_inject_payload", flaky)
        hardened = HealersPipeline(
            functions=["abs", "labs"], jobs=2
        ).run()
        assert list(hardened.declarations) == ["abs"]
        assert set(hardened.failed_functions) == {"labs"}
