"""Tests for the campaign scheduler (sharding + supervised pool)."""

import pytest

from repro.campaign import dispatch_order, plan_shards, run_tasks, task_seed
from tests.campaign_workers import draw, echo, misbehave, slow_first


class TestSharding:
    def test_round_robin_stripes(self):
        assert plan_shards(list("abcde"), 2) == [["a", "c", "e"], ["b", "d"]]
        assert plan_shards(list("abcdef"), 3) == [["a", "d"], ["b", "e"], ["c", "f"]]

    def test_width_never_exceeds_task_count(self):
        assert plan_shards(["only"], 8) == [["only"]]
        assert plan_shards([], 4) == [[]]

    def test_single_shard_is_identity(self):
        assert plan_shards(list("abc"), 1) == [list("abc")]

    def test_dispatch_interleaves_shards(self):
        # Round-robin striping followed by per-round interleaving
        # reproduces the caller's order: the first `jobs` dequeues hit
        # distinct shards while the global sequence stays stable.
        assert dispatch_order(list("abcde"), 2) == list("abcde")
        assert dispatch_order(list("abcdef"), 3) == list("abcdef")

    def test_plan_is_deterministic(self):
        names = [f"fn{i}" for i in range(17)]
        assert plan_shards(names, 4) == plan_shards(names, 4)


class TestTaskSeed:
    def test_stable(self):
        assert task_seed(7, "strcpy") == task_seed(7, "strcpy")

    def test_name_and_seed_sensitive(self):
        assert task_seed(7, "strcpy") != task_seed(7, "strcat")
        assert task_seed(7, "strcpy") != task_seed(8, "strcpy")

    def test_large_seeds_masked(self):
        assert task_seed(1 << 40, "abs") == task_seed(0, "abs")


class TestRunTasksInline:
    def test_empty_and_duplicates(self):
        assert run_tasks([], echo) == {}
        with pytest.raises(ValueError):
            run_tasks(["a", "a"], echo)

    def test_happy_path(self):
        results = run_tasks(["a1", "b1"], echo, jobs=1)
        assert results["a1"].ok and results["a1"].payload == {"name": "a1"}
        assert results["b1"].attempts == 1

    def test_exception_retried_then_failed(self):
        results = run_tasks(["boomX"], misbehave, jobs=1, task_retries=2)
        result = results["boomX"]
        assert result.status == "failed"
        assert result.attempts == 3
        assert "kaboom boomX" in result.error

    def test_on_result_fires_in_task_order(self):
        seen = []
        run_tasks(["a1", "b1", "c1"], echo, jobs=1,
                  on_result=lambda r: seen.append(r.name))
        assert seen == ["a1", "b1", "c1"]


class TestRunTasksPool:
    def test_parallel_matches_serial_randomness(self):
        # Per-task reseeding makes drawn randomness a function of
        # (campaign seed, task name) only — not of worker assignment.
        names = [f"t{i}" for i in range(6)]
        serial = run_tasks(names, draw, jobs=1, seed=7)
        parallel = run_tasks(names, draw, jobs=3, seed=7)
        assert {n: serial[n].payload for n in names} == {
            n: parallel[n].payload for n in names
        }

    def test_all_tasks_complete_despite_slow_task(self):
        names = ["w0", "x1", "y2", "z3"]
        order = []
        results = run_tasks(names, slow_first, jobs=2,
                            on_result=lambda r: order.append(r.name))
        assert sorted(order) == sorted(names)
        assert all(results[n].ok for n in names)

    def test_pool_survives_crash_hang_and_death(self):
        # One worker raises, one hangs past the deadline, one calls
        # os._exit; the campaign still terminates with the good tasks
        # ok and each bad task failed after its bounded retry.
        names = ["ok1", "boom1", "die1", "ok2", "hang1"]
        results = run_tasks(
            names, misbehave, jobs=2, timeout=1.5, task_retries=1
        )
        assert set(results) == set(names)
        assert results["ok1"].ok and results["ok2"].ok
        boom = results["boom1"]
        assert boom.status == "failed"
        assert boom.attempts == 2
        assert "kaboom boom1" in boom.error
        die = results["die1"]
        assert die.status == "failed"
        assert "worker died" in die.error
        hang = results["hang1"]
        assert hang.status == "failed"
        assert "timed out" in hang.error
