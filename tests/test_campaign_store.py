"""Tests for the content-addressed outcome store."""

import dataclasses
import json

import pytest

from repro.campaign import (
    UncacheableReport,
    outcome_digest,
    report_from_payload,
    report_to_payload,
)
from repro.campaign.store import OutcomeStore
from repro.injector import FaultInjector
from repro.libc.catalog import BY_NAME


@pytest.fixture(scope="module")
def strncpy_outcome():
    spec = BY_NAME["strncpy"]
    return spec, FaultInjector(spec).run()


class TestPayloadRoundTrip:
    def test_report_survives_json(self, strncpy_outcome):
        spec, report = strncpy_outcome
        payload = report_to_payload(report, spec.prototype)
        wire = json.loads(json.dumps(payload))  # force a real JSON pass
        assert report_from_payload(wire) == report

    def test_payload_is_deterministic(self, strncpy_outcome):
        spec, report = strncpy_outcome
        a = json.dumps(report_to_payload(report, spec.prototype), sort_keys=True)
        b = json.dumps(report_to_payload(report, spec.prototype), sort_keys=True)
        assert a == b

    def test_schema_mismatch_rejected(self, strncpy_outcome):
        spec, report = strncpy_outcome
        payload = report_to_payload(report, spec.prototype)
        payload["schema"] = 999
        with pytest.raises(ValueError):
            report_from_payload(payload)

    def test_unserializable_error_value_is_uncacheable(self, strncpy_outcome):
        spec, report = strncpy_outcome
        bad = dataclasses.replace(
            report,
            errno_class=dataclasses.replace(
                report.errno_class, error_value=object()
            ),
        )
        with pytest.raises(UncacheableReport):
            report_to_payload(bad, spec.prototype)


class TestOutcomeStore:
    def test_miss_returns_none(self, tmp_path):
        assert OutcomeStore(tmp_path).get("0" * 64) is None

    def test_cache_hit_equals_fresh_run(self, tmp_path, strncpy_outcome):
        spec, report = strncpy_outcome
        store = OutcomeStore(tmp_path)
        digest = outcome_digest(spec)
        assert store.put(digest, report, spec.prototype) is not None
        cached = store.get(digest)
        assert cached == report
        # A brand-new injection run over the same spec produces the
        # same report the cache returned.
        assert cached == FaultInjector(spec).run()

    def test_corrupt_entry_reads_as_miss(self, tmp_path, strncpy_outcome):
        spec, report = strncpy_outcome
        store = OutcomeStore(tmp_path)
        digest = outcome_digest(spec)
        store.put(digest, report, spec.prototype)
        store.path_for(digest).write_text("{not json")
        assert store.get(digest) is None

    def test_wrong_schema_reads_as_miss(self, tmp_path):
        store = OutcomeStore(tmp_path)
        store.put_payload("f" * 64, {"schema": 999})
        assert store.get_payload("f" * 64) is None
        assert store.get("f" * 64) is None

    def test_uncacheable_put_returns_none(self, tmp_path, strncpy_outcome):
        spec, report = strncpy_outcome
        bad = dataclasses.replace(
            report,
            errno_class=dataclasses.replace(
                report.errno_class, error_value=object()
            ),
        )
        assert OutcomeStore(tmp_path).put("a" * 64, bad, spec.prototype) is None

    def test_entries_and_clean(self, tmp_path, strncpy_outcome):
        spec, report = strncpy_outcome
        store = OutcomeStore(tmp_path)
        digest = outcome_digest(spec)
        store.put(digest, report, spec.prototype)
        assert store.entries() == [digest]
        stats = store.clean()
        assert stats.files == 1
        assert stats.bytes_reclaimed > 0
        assert store.entries() == []

    def test_clean_sweeps_temp_leftovers_and_reports_bytes(
        self, tmp_path, strncpy_outcome
    ):
        spec, report = strncpy_outcome
        store = OutcomeStore(tmp_path)
        store.put(outcome_digest(spec), report, spec.prototype)
        leftover = store.outcomes / ".a1b2.json.tmp"
        leftover.write_bytes(b"x" * 100)  # a crashed writer's droppings
        expected = sum(
            p.stat().st_size for p in store.outcomes.iterdir() if p.is_file()
        )
        preview = store.clean(dry_run=True)
        assert preview.files == 2
        assert preview.bytes_reclaimed == expected
        assert leftover.exists()
        stats = store.clean()
        assert (stats.files, stats.bytes_reclaimed) == (2, expected)
        assert not leftover.exists()
        assert store.entries() == []

    def test_writes_leave_no_temp_files(self, tmp_path, strncpy_outcome):
        spec, report = strncpy_outcome
        store = OutcomeStore(tmp_path)
        store.put(outcome_digest(spec), report, spec.prototype)
        leftovers = [p for p in store.outcomes.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
