"""Unit tests for the C declaration lexer and parser."""

import pytest

from repro.cdecl import (
    ArrayType,
    BaseType,
    DeclarationParser,
    FunctionType,
    LexError,
    ParseError,
    PointerType,
    TokenKind,
    sizeof,
    tokenize,
    typedef_table,
)


@pytest.fixture()
def parser():
    return DeclarationParser(typedef_table())


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("const struct tm *tp")
        kinds = [t.kind for t in tokens]
        assert kinds[:2] == [TokenKind.KEYWORD, TokenKind.KEYWORD]
        assert tokens[2].text == "tm"
        assert tokens[2].kind is TokenKind.IDENT

    def test_comments_and_preprocessor_stripped(self):
        tokens = tokenize("/* c */ int x; // line\n#define FOO 1\nint y;")
        texts = [t.text for t in tokens if t.kind is not TokenKind.END]
        assert texts == ["int", "x", ";", "int", "y", ";"]

    def test_ellipsis(self):
        tokens = tokenize("(int, ...)")
        assert any(t.kind is TokenKind.ELLIPSIS for t in tokens)

    def test_numbers_decimal_and_hex(self):
        tokens = tokenize("[10] [0x20]")
        numbers = [t.text for t in tokens if t.kind is TokenKind.NUMBER]
        assert numbers == ["10", "0x20"]

    def test_strict_mode_raises_on_junk(self):
        with pytest.raises(LexError):
            tokenize("int $broken;")

    def test_tolerant_mode_passes_junk_through(self):
        tokens = tokenize("int $broken;", tolerant=True)
        assert any(t.text == "$" for t in tokens)


class TestPrototypes:
    def test_simple_prototype(self, parser):
        proto = parser.parse_prototype("size_t strlen(const char *s);")
        assert proto.name == "strlen"
        assert proto.ftype.arity == 1
        arg = proto.ftype.parameters[0].ctype
        assert isinstance(arg, PointerType)
        assert arg.pointee == BaseType("char", const=True)

    def test_pointer_return_type(self, parser):
        proto = parser.parse_prototype("char *asctime(const struct tm *tp);")
        assert proto.ftype.return_type == PointerType(BaseType("char"))
        assert proto.ftype.parameters[0].name == "tp"

    def test_struct_tag_argument(self, parser):
        proto = parser.parse_prototype("int tcgetattr(int fd, struct termios *termios_p);")
        assert proto.ftype.parameters[1].ctype.pointee == BaseType("struct termios")

    def test_multi_keyword_scalars(self, parser):
        proto = parser.parse_prototype(
            "unsigned long long weird(unsigned short a, long double b);"
        )
        assert proto.ftype.return_type == BaseType("unsigned long long")
        assert proto.ftype.parameters[0].ctype == BaseType("unsigned short")
        assert proto.ftype.parameters[1].ctype == BaseType("long double")

    def test_function_pointer_parameter(self, parser):
        proto = parser.parse_prototype(
            "void qsort(void *base, size_t nmemb, size_t size,"
            " int (*compar)(const void *, const void *));"
        )
        comparator = proto.ftype.parameters[3].ctype
        assert isinstance(comparator, PointerType)
        assert isinstance(comparator.pointee, FunctionType)
        assert comparator.pointee.arity == 2
        assert proto.ftype.parameters[3].name == "compar"

    def test_variadic(self, parser):
        proto = parser.parse_prototype("int fprintf(FILE *stream, const char *format, ...);")
        assert proto.ftype.variadic

    def test_void_parameter_list(self, parser):
        proto = parser.parse_prototype("int rand(void);")
        assert proto.ftype.arity == 0

    def test_double_pointer(self, parser):
        proto = parser.parse_prototype("long strtol(const char *nptr, char **endptr, int base);")
        endptr = proto.ftype.parameters[1].ctype
        assert isinstance(endptr, PointerType)
        assert isinstance(endptr.pointee, PointerType)

    def test_array_parameter(self, parser):
        proto = parser.parse_prototype("int sum(int values[16], int n);")
        assert isinstance(proto.ftype.parameters[0].ctype, ArrayType)
        assert proto.ftype.parameters[0].ctype.length == 16

    def test_unnamed_parameters(self, parser):
        proto = parser.parse_prototype("int strcmp(const char *, const char *);")
        assert proto.ftype.arity == 2
        assert proto.ftype.parameters[0].name == ""

    def test_trailing_garbage_rejected(self, parser):
        with pytest.raises(ParseError):
            parser.parse_prototype("int f(void); int g(void);")

    def test_not_a_prototype_rejected(self, parser):
        with pytest.raises(ParseError):
            parser.parse_prototype("int x;")

    def test_render_round_trip(self, parser):
        decls = [
            "char *asctime(const struct tm *tp);",
            "void *memcpy(void *dest, const void *src, size_t n);",
            "int fseek(FILE *stream, long offset, int whence);",
            "unsigned long strtoul(const char *nptr, char **endptr, int base);",
        ]
        for text in decls:
            proto = parser.parse_prototype(text)
            reparsed = parser.parse_prototype(proto.render())
            assert reparsed == proto


class TestHeaders:
    def test_struct_definition_does_not_leak_into_next_decl(self, parser):
        header = (
            "struct tm { int tm_sec; int tm_min; };\n"
            "extern char *asctime(const struct tm *tm);\n"
        )
        protos = parser.parse_header(header)
        assert len(protos) == 1
        assert protos[0].ftype.return_type == PointerType(BaseType("char"))

    def test_typedef_registration(self, parser):
        header = "typedef unsigned long mysize_t;\nmysize_t f(mysize_t n);\n"
        protos = parser.parse_header(header)
        assert protos[0].name == "f"
        resolved = parser.resolve(protos[0].ftype)
        assert resolved.return_type == BaseType("unsigned long")

    def test_error_recovery_skips_only_bad_declaration(self, parser):
        header = (
            "extern int good_one(int x);\n"
            "int $$$totally(broken&;\n"
            "extern int good_two(char *s);\n"
        )
        names = [p.name for p in parser.parse_header(header)]
        assert "good_one" in names
        assert "good_two" in names

    def test_function_definitions_skipped_but_counted(self, parser):
        header = "int inline_helper(int a)\n{\n  return a + 1;\n}\nint after(void);\n"
        names = [p.name for p in parser.parse_header(header)]
        assert names == ["inline_helper", "after"]

    def test_variables_ignored(self, parser):
        names = [p.name for p in parser.parse_header("extern int errno_var;\nint f(void);\n")]
        assert names == ["f"]


class TestResolveAndSizeof:
    def test_resolve_keeps_const(self, parser):
        proto = parser.parse_prototype("int f(const size_t n);")
        resolved = parser.resolve(proto.ftype)
        assert resolved.parameters[0].ctype == BaseType("unsigned long", const=True)

    def test_resolve_opaque_records(self, parser):
        proto = parser.parse_prototype("int fclose(FILE *fp);")
        resolved = parser.resolve(proto.ftype)
        assert resolved.parameters[0].ctype.pointee == BaseType("struct _IO_FILE")

    def test_sizeof_scalars(self):
        assert sizeof(BaseType("int")) == 4
        assert sizeof(BaseType("long")) == 8
        assert sizeof(BaseType("char")) == 1
        assert sizeof(PointerType(BaseType("void"))) == 8

    def test_sizeof_known_structs(self):
        assert sizeof(BaseType("struct tm")) == 44
        assert sizeof(BaseType("struct _IO_FILE")) == 216
        assert sizeof(BaseType("struct termios")) == 60

    def test_sizeof_typedef_resolution(self):
        assert sizeof(BaseType("size_t")) == 8
        assert sizeof(BaseType("FILE")) == 216

    def test_sizeof_array(self):
        assert sizeof(ArrayType(BaseType("int"), 10)) == 40
