"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "strcpy" in out
        assert "ballista" in out
        assert "111 functions" in out


class TestExtract:
    def test_prints_statistics(self, capsys):
        assert main(["extract"]) == 0
        out = capsys.readouterr().out
        assert "man_coverage_pct" in out
        assert "51.1" in out

    def test_verbose_lists_routes(self, capsys):
        assert main(["extract", "-v"]) == 0
        out = capsys.readouterr().out
        assert "asctime" in out
        assert "man page headers" in out or "exhaustive" in out


class TestInject:
    def test_prints_declaration_xml(self, capsys):
        assert main(["inject", "asctime"]) == 0
        out = capsys.readouterr().out
        assert "<robust_type>R_ARRAY_NULL[44]</robust_type>" in out
        assert "calls" in out

    def test_semi_auto_flag_applies_edits(self, capsys):
        assert main(["inject", "--semi-auto", "closedir"]) == 0
        out = capsys.readouterr().out
        assert "<robust_type>OPEN_DIR</robust_type>" in out
        assert "<assert>track_dir</assert>" in out

    def test_unknown_function_fails(self, capsys):
        assert main(["inject", "not_a_function"]) == 2
        assert "unknown functions" in capsys.readouterr().err


class TestHarden:
    def test_writes_artifacts(self, tmp_path, capsys):
        assert main(["harden", "asctime", "abs", "-o", str(tmp_path)]) == 0
        wrapper_c = (tmp_path / "healers_wrapper.c").read_text()
        assert "check_R_ARRAY_NULL" in wrapper_c
        header = (tmp_path / "healers_checks.h").read_text()
        assert "check_OPEN_FILE" in header
        assert (tmp_path / "declarations.xml").exists()
        out = capsys.readouterr().out
        assert "1 unsafe / 1 safe" in out


class TestBallista:
    def test_subset_evaluation(self, capsys):
        assert main(["ballista", "asctime", "strlen", "-v"]) == 0
        out = capsys.readouterr().out
        assert "unwrapped" in out
        assert "semi-auto" in out
        assert "'crash_pct': 0.0" in out.splitlines()[-1] or "semi-auto" in out

    def test_unwrapped_only(self, capsys):
        assert main(["ballista", "strlen", "--unwrapped-only"]) == 0
        out = capsys.readouterr().out
        assert "full-auto" not in out


class TestBitflips:
    def test_single_function_campaign(self, capsys):
        assert main(["bitflips", "strlen"]) == 0
        out = capsys.readouterr().out
        assert out.count("'function': 'strlen'") == 3  # three configurations


class TestDiff:
    def test_diff_command(self, tmp_path, capsys):
        from repro.core import HealersPipeline
        from repro.core.cache import save_declarations
        from repro.typelattice import registry as R

        hardened = HealersPipeline(functions=["asctime"]).run()
        old = tmp_path / "old.xml"
        new = tmp_path / "new.xml"
        save_declarations(hardened.declarations, old)
        retyped = {
            "asctime": hardened.declarations["asctime"].with_robust_type(
                0, R.R_ARRAY(52)
            )
        }
        save_declarations(retyped, new)
        assert main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "asctime: retyped" in out
        assert "wrappers to regenerate: asctime" in out


class TestJsonOutput:
    def test_extract_json(self, capsys):
        import json

        assert main(["extract", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["stats"]["man_coverage_pct"] == 51.1

    def test_extract_json_verbose_lists_functions(self, capsys):
        import json

        assert main(["extract", "--json", "-v"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert "asctime" in document["functions"]
        assert "route" in document["functions"]["asctime"]

    def test_inject_json(self, capsys):
        import json

        assert main(["inject", "--json", "asctime"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        row = rows[0]
        assert row["function"] == "asctime"
        assert row["vectors"] > 0
        assert row["calls"] >= row["vectors"]
        assert "R_ARRAY_NULL[44]" in row["robust_types"]


class TestHardenSummary:
    def test_summary_includes_vector_and_crash_counts(self, tmp_path, capsys):
        assert main(["harden", "strcpy", "-o", str(tmp_path)]) == 0
        summary = capsys.readouterr().out.splitlines()[-1]
        assert "vectors" in summary
        assert "crashes" in summary
        assert "calls" in summary


class TestTraceAndReport:
    def test_inject_trace_report_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["inject", "asctime", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert trace.exists()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "sandbox calls by status" in out
        assert "RETURNED" in out
        assert "injector.vector" in out
        assert "campaign" in out

    def test_trace_spans_nest(self, tmp_path):
        from repro.obs import read_trace

        trace = tmp_path / "t.jsonl"
        assert main(["inject", "asctime", "--trace", str(trace)]) == 0
        spans = {
            r["id"]: r for r in read_trace(trace) if r.get("type") == "span"
        }
        call = next(s for s in spans.values() if s["name"] == "sandbox.call")
        vector = spans[call["parent"]]
        function = spans[vector["parent"]]
        campaign = spans[function["parent"]]
        assert vector["name"] == "injector.vector"
        assert function["name"] == "injector.function"
        assert campaign["name"] == "campaign"
        assert campaign["parent"] is None

    def test_report_json(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.jsonl"
        assert main(["inject", "asctime", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", "--json", str(trace)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["sandbox_calls"]["RETURNED"] > 0
        assert "injector.function" in document["phases"]

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_ballista_trace(self, tmp_path, capsys):
        trace = tmp_path / "b.jsonl"
        assert main(
            ["ballista", "strlen", "--unwrapped-only", "--trace", str(trace)]
        ) == 0
        assert trace.exists()
        from repro.obs import summarize_trace_file

        summary = summarize_trace_file(trace)
        assert summary.counters.get("ballista.tests{configuration=unwrapped,status=crash}", 0) > 0
