"""Tests for the generated wrapper C source (paper Figure 5)."""

import pytest

from repro.declarations import declaration_from_report
from repro.injector import inject_function
from repro.wrapper import (
    check_expression,
    generate_preamble,
    generate_wrapper_function,
    generate_wrapper_library,
)
from repro.typelattice import registry as R


@pytest.fixture(scope="module")
def asctime_code():
    declaration = declaration_from_report(inject_function("asctime"))
    return generate_wrapper_function(declaration)


class TestFigure5Shape:
    def test_signature(self, asctime_code):
        assert asctime_code.startswith("char * asctime (const struct tm *a1)")

    def test_recursion_guard(self, asctime_code):
        assert "if (in_flag)" in asctime_code
        assert "in_flag = 1;" in asctime_code
        assert "in_flag = 0;" in asctime_code

    def test_check_call_matches_paper(self, asctime_code):
        assert "if (!check_R_ARRAY_NULL(a1, 44))" in asctime_code

    def test_error_path(self, asctime_code):
        assert "errno = EINVAL;" in asctime_code
        assert "ret = (char *) NULL;" in asctime_code
        assert "goto PostProcessing;" in asctime_code

    def test_forward_call_and_postprocessing(self, asctime_code):
        assert "ret = (*libc_asctime) (a1);" in asctime_code
        assert "PostProcessing: ;" in asctime_code
        assert asctime_code.rstrip().endswith("}")
        assert "return ret;" in asctime_code


class TestCheckExpressions:
    def test_unconstrained_needs_no_check(self):
        assert check_expression(R.UNCONSTRAINED, "a1") is None
        assert check_expression(R.ANY_INT, "a2") is None

    def test_parameterized_checks_carry_size(self):
        assert check_expression(R.RW_ARRAY(56), "a1") == "check_RW_ARRAY(a1, 56)"
        assert check_expression(R.W_ARRAY_NULL(20), "a1") == "check_W_ARRAY_NULL(a1, 20)"

    def test_scalar_checks_inline(self):
        assert check_expression(R.INT_NONNEG, "a2") == "(a2 >= 0)"
        assert check_expression(R.CHAR_RANGE, "c") == "check_CHAR_RANGE(c)"

    def test_string_checks(self):
        assert check_expression(R.MODE_STRING, "a2") == "check_MODE_STRING(a2)"
        assert check_expression(R.CSTRING, "a1") == "check_CSTRING(a1)"


class TestVoidAndVariadic:
    def test_void_function_has_no_ret(self):
        declaration = declaration_from_report(inject_function("rewinddir"))
        code = generate_wrapper_function(declaration)
        assert " ret;" not in code
        assert "return;" in code
        assert "return ret;" not in code

    def test_variadic_signature(self):
        declaration = declaration_from_report(inject_function("fprintf"))
        code = generate_wrapper_function(declaration)
        assert "..." in code.splitlines()[0]


class TestLibraryAssembly:
    @pytest.fixture(scope="class")
    def declarations(self):
        return {
            name: declaration_from_report(inject_function(name))
            for name in ("asctime", "abs", "strlen")
        }

    def test_preamble_resolves_only_unsafe(self, declarations):
        preamble = generate_preamble(declarations)
        assert 'dlsym(RTLD_NEXT, "asctime")' in preamble
        assert 'dlsym(RTLD_NEXT, "strlen")' in preamble
        assert "abs" not in preamble.replace("RTLD", "")

    def test_library_skips_safe_functions(self, declarations):
        source = generate_wrapper_library(declarations)
        assert "asctime (" in source
        assert "strlen (" in source
        assert "int abs (" not in source  # safe: no wrapper emitted

    def test_library_has_thread_local_flag(self, declarations):
        source = generate_wrapper_library(declarations)
        assert "__thread int in_flag" in source

    def test_generated_code_is_balanced(self, declarations):
        source = generate_wrapper_library(declarations)
        assert source.count("{") == source.count("}")
        assert source.count("(") == source.count(")")
