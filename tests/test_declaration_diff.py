"""Tests for release-to-release declaration diffing."""

import pytest

from repro.declarations import (
    ChangeKind,
    FunctionDeclaration,
    declaration_from_report,
    diff_declarations,
)
from repro.injector import FaultInjector, inject_function
from repro.libc.catalog import BY_NAME, FunctionSpec
from repro.typelattice import registry as R


@pytest.fixture(scope="module")
def v22():
    return {
        "asctime": declaration_from_report(inject_function("asctime")),
        "abs": declaration_from_report(inject_function("abs")),
        "strlen": declaration_from_report(inject_function("strlen")),
    }


class TestDiffKinds:
    def test_identical_sets_are_unchanged(self, v22):
        diff = diff_declarations(v22, v22)
        assert not diff.changed
        assert diff.needs_regeneration == []

    def test_added_and_removed(self, v22):
        new = dict(v22)
        removed = new.pop("strlen")
        new["strcat"] = removed  # pretend a new export
        diff = diff_declarations(v22, {**new})
        kinds = {c.name: c.kind for c in diff.changes}
        assert kinds["strlen"] is ChangeKind.REMOVED
        assert kinds["strcat"] is ChangeKind.ADDED
        assert "strcat" in diff.needs_regeneration
        assert "strlen" not in diff.needs_regeneration

    def test_retyped_argument_reported_with_detail(self, v22):
        new = dict(v22)
        new["asctime"] = v22["asctime"].with_robust_type(0, R.R_ARRAY(52))
        diff = diff_declarations(v22, new)
        change = next(c for c in diff.changes if c.name == "asctime")
        assert change.kind is ChangeKind.RETYPED
        assert "R_ARRAY_NULL[44] -> R_ARRAY[52]" in change.details[0]
        assert "asctime" in diff.needs_regeneration

    def test_safety_transitions(self, v22):
        import dataclasses

        new = dict(v22)
        new["abs"] = dataclasses.replace(v22["abs"], attribute="unsafe")
        new["asctime"] = dataclasses.replace(v22["asctime"], attribute="safe")
        diff = diff_declarations(v22, new)
        kinds = {c.name: c.kind for c in diff.changes}
        assert kinds["abs"] is ChangeKind.LESS_SAFE
        assert kinds["asctime"] is ChangeKind.SAFER
        assert "abs" in diff.needs_regeneration
        assert "asctime" not in diff.needs_regeneration

    def test_errno_change(self, v22):
        import dataclasses

        new = dict(v22)
        new["asctime"] = dataclasses.replace(
            v22["asctime"], error_value_text="-1", error_value=-1
        )
        diff = diff_declarations(v22, new)
        change = next(c for c in diff.changes if c.name == "asctime")
        assert change.kind is ChangeKind.ERRNO_CHANGED

    def test_summary_counts(self, v22):
        new = dict(v22)
        new["asctime"] = v22["asctime"].with_robust_type(0, R.R_ARRAY(52))
        diff = diff_declarations(v22, new)
        summary = diff.summary()
        assert summary["retyped"] == 1
        assert summary["unchanged"] == 2


class TestEndToEndReleaseDiff:
    def test_regression_release_shows_up_in_diff(self, v22):
        """Wire the diff to the simulated v2.4 asctime regression from
        the release-adaptation scenario."""
        from tests.test_release_adaptation import asctime_v24

        base = BY_NAME["asctime"]
        spec = FunctionSpec(
            name="asctime", prototype=base.prototype, model=asctime_v24,
            headers=base.headers, version="GLIBC_2.4",
        )
        new_decl = declaration_from_report(FaultInjector(spec).run(), "GLIBC_2.4")
        diff = diff_declarations(
            {"asctime": v22["asctime"]}, {"asctime": new_decl}
        )
        change = diff.changes[0]
        assert change.kind is ChangeKind.RETYPED
        assert diff.new_version == "GLIBC_2.4"
        assert "asctime" in diff.needs_regeneration
