"""Tests for function declarations: Figure 2 XML, round trips, manual
edits."""

import pytest

from repro.declarations import (
    ArgumentDeclaration,
    FunctionDeclaration,
    apply_manual_edits,
    declaration_from_report,
    fallback_error_value,
)
from repro.injector import inject_function
from repro.libc.errno_codes import EINVAL
from repro.typelattice import registry as R


@pytest.fixture(scope="module")
def asctime_declaration():
    return declaration_from_report(inject_function("asctime"))


class TestFigure2:
    def test_asctime_declaration_matches_figure_2(self, asctime_declaration):
        decl = asctime_declaration
        assert decl.name == "asctime"
        assert decl.arguments[0].ctype == "const struct tm *"
        assert decl.arguments[0].robust_type.render() == "R_ARRAY_NULL[44]"
        assert decl.return_type.strip() == "char *"
        assert decl.error_value_text == "NULL"
        assert EINVAL in decl.errnos
        assert decl.attribute == "unsafe"

    def test_xml_contains_figure_2_elements(self, asctime_declaration):
        xml = asctime_declaration.to_xml()
        for snippet in (
            "<name>asctime</name>",
            "<robust_type>R_ARRAY_NULL[44]</robust_type>",
            "<error_value>NULL</error_value>",
            "<errno>EINVAL</errno>",
            "<attribute>unsafe</attribute>",
        ):
            assert snippet in xml

    def test_xml_round_trip(self, asctime_declaration):
        parsed = FunctionDeclaration.from_xml(asctime_declaration.to_xml())
        assert parsed.name == asctime_declaration.name
        assert parsed.arguments == asctime_declaration.arguments
        assert parsed.error_value == asctime_declaration.error_value
        assert parsed.errnos == asctime_declaration.errnos
        assert parsed.attribute == asctime_declaration.attribute

    def test_round_trip_preserves_assertions(self, asctime_declaration):
        edited = asctime_declaration.with_assertions("track_dir", "track_file")
        parsed = FunctionDeclaration.from_xml(edited.to_xml())
        assert parsed.assertions == ("track_dir", "track_file")

    def test_from_xml_rejects_other_roots(self):
        with pytest.raises(ValueError):
            FunctionDeclaration.from_xml("<banana/>")


class TestFallbackErrorValues:
    def test_pointer_returns_null(self):
        assert fallback_error_value("char *") == (0, "NULL")

    def test_signed_returns_minus_one(self):
        assert fallback_error_value("int") == (-1, "-1")
        assert fallback_error_value("long") == (-1, "-1")

    def test_unsigned_returns_zero(self):
        assert fallback_error_value("unsigned long") == (0, "0")

    def test_void_and_double(self):
        assert fallback_error_value("void") == (None, "none")
        assert fallback_error_value("double") == (0.0, "0.0")


class TestManualEdits:
    def _decl(self, name):
        return declaration_from_report(inject_function(name))

    def test_closedir_gets_open_dir_and_assertion(self):
        edited = apply_manual_edits(self._decl("closedir"))
        assert edited.arguments[0].robust_type == R.OPEN_DIR
        assert "track_dir" in edited.assertions

    def test_fclose_gets_file_tracking(self):
        edited = apply_manual_edits(self._decl("fclose"))
        assert "track_file" in edited.assertions
        assert edited.arguments[0].robust_type.name.startswith("OPEN_FILE")

    def test_strtok_gets_state_assertion_and_writable_type(self):
        edited = apply_manual_edits(self._decl("strtok"))
        assert "strtok_state" in edited.assertions
        assert edited.arguments[0].robust_type == R.WRITABLE_STRING_NULL

    def test_qsort_comparator_strengthened(self):
        edited = apply_manual_edits(self._decl("qsort"))
        assert edited.arguments[3].robust_type == R.FUNCPTR
        assert edited.arguments[0].robust_type.name == "RW_ARRAY"

    def test_strtol_conversion_edit(self):
        edited = apply_manual_edits(self._decl("strtol"))
        assert edited.arguments[0].robust_type == R.CSTRING
        assert edited.arguments[1].robust_type.render() == "W_ARRAY_NULL[8]"

    def test_tmpnam_size_fixed(self):
        edited = apply_manual_edits(self._decl("tmpnam"))
        assert edited.arguments[0].robust_type.render() == "W_ARRAY_NULL[20]"

    def test_unknown_function_passes_through(self):
        decl = self._decl("abs")
        assert apply_manual_edits(decl) == decl

    def test_with_robust_type_is_pure(self, asctime_declaration):
        edited = asctime_declaration.with_robust_type(0, R.UNCONSTRAINED)
        assert asctime_declaration.arguments[0].robust_type != R.UNCONSTRAINED
        assert edited.arguments[0].robust_type == R.UNCONSTRAINED

    def test_needs_manual_attention_flag(self):
        argument = ArgumentDeclaration("DIR *", R.RW_ARRAY(72), R.OPEN_DIR)
        assert argument.needs_manual_attention
        plain = ArgumentDeclaration("int", R.ANY_INT)
        assert not plain.needs_manual_attention
