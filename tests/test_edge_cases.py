"""Edge-case coverage: recursion guard, string-scan bounds, cache
forcing, codegen corner cases, pool/harness details."""

import pytest

from repro.core import HealersPipeline
from repro.core.cache import load_or_generate, save_declarations
from repro.libc import standard_runtime
from repro.memory import NULL, Protection
from repro.typelattice import registry as R
from repro.wrapper import (
    CheckLibrary,
    MAX_STRING_SCAN,
    WrapperLibrary,
    WrapperState,
)


@pytest.fixture(scope="module")
def hardened():
    return HealersPipeline(functions=["asctime", "strlen", "abs"]).run()


class TestRecursionGuard:
    def test_in_flag_skips_checks_on_reentrancy(self, hardened):
        """The Figure 5 ``in_flag``: a wrapped call made while another
        wrapped call is in flight forwards directly (no re-checking),
        preventing resolution-time recursion."""
        runtime = standard_runtime()
        wrapper = WrapperLibrary(hardened.declarations)
        wrapper._in_flag = True
        try:
            outcome = wrapper.call("strlen", [NULL], runtime)
            # Forwarded unchecked: the NULL dereference reaches libc.
            assert outcome.crashed
        finally:
            wrapper._in_flag = False
        protected = wrapper.call("strlen", [NULL], runtime)
        assert protected.returned  # guard released: checks active again

    def test_guard_resets_after_violation(self, hardened):
        runtime = standard_runtime()
        wrapper = WrapperLibrary(hardened.declarations)
        wrapper.call("strlen", [NULL], runtime)
        assert wrapper._in_flag is False


class TestStringScanBounds:
    def test_scan_gives_up_past_limit(self):
        runtime = standard_runtime()
        checks = CheckLibrary(runtime, WrapperState())
        # A massive region with no terminator inside the scan window.
        region = runtime.space.map_region(MAX_STRING_SCAN + 4096)
        region.poke(region.base, b"\xa5" * region.size)
        assert checks.string_length(region.base) is None

    def test_terminator_at_scan_boundary(self):
        runtime = standard_runtime()
        checks = CheckLibrary(runtime, WrapperState())
        region = runtime.space.map_region(MAX_STRING_SCAN)
        region.poke(region.base, b"x" * (MAX_STRING_SCAN - 1) + b"\x00")
        assert checks.string_length(region.base) == MAX_STRING_SCAN - 1

    def test_heap_string_bounded_by_block(self):
        runtime = standard_runtime()
        checks = CheckLibrary(runtime, WrapperState())
        pointer = runtime.heap.malloc(16)
        runtime.space.store(pointer, b"short\x00" + b"\xa5" * 10)
        assert checks.string_length(pointer) == 5
        assert checks.string_length(pointer + 6) is None  # no NUL to block end


class TestCacheForcing:
    def test_force_regenerates(self, hardened, tmp_path):
        path = tmp_path / "decls.xml"
        stale = hardened.declarations["abs"].with_assertions("bogus_marker")
        save_declarations({"abs": stale}, path)
        refreshed = load_or_generate(functions=["abs"], path=path, force=True)
        assert "bogus_marker" not in refreshed.declarations["abs"].assertions

    def test_cache_subset_filtering(self, hardened, tmp_path):
        path = tmp_path / "decls.xml"
        save_declarations(hardened.declarations, path)
        subset = load_or_generate(functions=["abs"], path=path)
        assert set(subset.declarations) == {"abs"}


class TestCodegenCorners:
    def test_function_pointer_parameter_renders(self):
        from repro.declarations import declaration_from_report
        from repro.injector import inject_function
        from repro.wrapper import generate_wrapper_function

        code = generate_wrapper_function(
            declaration_from_report(inject_function("qsort"))
        )
        first_line = code.splitlines()[0]
        assert "int (*)(const void *, const void *)" in first_line
        assert "(*libc_qsort) (a1, a2, a3, a4)" in code

    def test_zero_argument_function(self):
        from repro.declarations import declaration_from_report
        from repro.injector import inject_function
        from repro.wrapper import generate_wrapper_function

        report = inject_function("rand")
        code = generate_wrapper_function(declaration_from_report(report))
        assert "(void)" in code.splitlines()[0]


class TestWrapperStatsAccounting:
    def test_library_time_only_counts_forwarded_calls(self, hardened):
        import time

        runtime = standard_runtime()
        wrapper = WrapperLibrary(hardened.declarations)
        wrapper.call("strlen", [NULL], runtime)  # rejected: not forwarded
        assert wrapper.stats.forwarded == 0
        assert wrapper.stats.violations == 1
        s = runtime.space.alloc_cstring("abc").base
        wrapper.call("strlen", [s], runtime)
        assert wrapper.stats.forwarded == 1
        assert wrapper.stats.library_seconds > 0

    def test_check_seconds_accumulate(self, hardened):
        runtime = standard_runtime()
        wrapper = WrapperLibrary(hardened.declarations)
        s = runtime.space.alloc_cstring("abc").base
        for _ in range(5):
            wrapper.call("strlen", [s], runtime)
        assert wrapper.stats.check_seconds > 0
        assert wrapper.stats.calls == 5


class TestRuntimeStatics:
    def test_static_buffers_are_disjoint(self):
        runtime = standard_runtime()
        statics = {runtime.asctime_buffer, runtime.static_tm, runtime.tmpnam_buffer}
        assert len(statics) == 3

    def test_env_pointer_stability(self):
        """getenv returns the same pointer for an unchanged variable —
        applications cache these pointers."""
        from repro.libc import BY_NAME
        from repro.sandbox import Sandbox

        runtime = standard_runtime()
        sandbox = Sandbox()
        name = runtime.space.alloc_cstring("HOME").base
        first = sandbox.call(BY_NAME["getenv"].model, (name,), runtime).return_value
        second = sandbox.call(BY_NAME["getenv"].model, (name,), runtime).return_value
        assert first == second

    def test_mode_string_check_rejects_overlong(self):
        runtime = standard_runtime()
        checks = CheckLibrary(runtime, WrapperState())
        weird = runtime.space.alloc_cstring("r+++++bbbb")
        assert checks.check(R.MODE_STRING, weird.base)  # long but legal chars
        illegal = runtime.space.alloc_cstring("rw")  # 'w' not a modifier
        assert not checks.check(R.MODE_STRING, illegal.base)
