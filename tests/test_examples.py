"""Keep the examples from bit-rotting: compile all, run the quick one."""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_example_set_is_complete():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "harden_library.py",
        "robustness_evaluation.py",
        "security_hardening.py",
        "extraction_pipeline.py",
        "bitflip_campaign.py",
    } <= names


def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "R_ARRAY_NULL[44]" in result.stdout
    assert "All crash failures prevented" in result.stdout
