"""The extensible type system, exercised end to end (section 4.2).

"Our system has generic test case generators for all basic types,
pointers, and structures. ... However, we also permit the addition of
new test case generators that contain specific test cases for certain
types.  Each test case generator can define a set of types and their
relationship to each other and potentially to types defined by other
generators."

This test registers a *new* family — network sockets, a type the
reproduction does not ship — with its own fundamental and unified
types and its own generator, then runs the standard fault injector
over a socket-using function and checks the new types flow through
robust-type computation, declarations and the wrapper untouched.
"""

import pytest

from repro.declarations import declaration_from_report
from repro.injector import FaultInjector
from repro.libc.catalog import FunctionSpec
from repro.libc.errno_codes import EBADF, EINVAL
from repro.generators.base import Materialized, TestCaseGenerator, ValueTemplate
from repro.typelattice.instances import TypeInstance
from repro.typelattice.rules import DIRECT_RULES
from repro.memory import SegmentationFault, AccessKind

# ----------------------------------------------------------------------
# 1. new types: three fundamentals, two unified, plus a family top
# ----------------------------------------------------------------------

SOCK_TCP = TypeInstance("SOCK_TCP", fundamental=True, family="socket")
SOCK_UDP = TypeInstance("SOCK_UDP", fundamental=True, family="socket")
SOCK_CLOSED = TypeInstance("SOCK_CLOSED", fundamental=True, family="socket")
OPEN_SOCKET = TypeInstance("OPEN_SOCKET", family="socket")
ANY_SOCKET = TypeInstance("ANY_SOCKET", family="socket")

_NEW_RULES = {
    ("SOCK_TCP", "OPEN_SOCKET"),
    ("SOCK_UDP", "OPEN_SOCKET"),
    ("OPEN_SOCKET", "ANY_SOCKET"),
    ("SOCK_CLOSED", "ANY_SOCKET"),
}


@pytest.fixture()
def socket_family():
    """Register the socket family's types and subtype rules, then
    clean up (the paper's generator-registration step)."""
    from repro.typelattice.registry import (
        register_extension_types,
        unregister_extension_types,
    )

    instances = (SOCK_TCP, SOCK_UDP, SOCK_CLOSED, OPEN_SOCKET, ANY_SOCKET)
    register_extension_types(*instances)
    for edge in _NEW_RULES:
        DIRECT_RULES[edge] = lambda sub, sup: True
    try:
        yield
    finally:
        unregister_extension_types(*instances)
        for edge in _NEW_RULES:
            DIRECT_RULES.pop(edge, None)


# ----------------------------------------------------------------------
# 2. a new test case generator producing those fundamentals
# ----------------------------------------------------------------------

#: socket numbers the fake socket layer knows about.
TCP_SOCKET, UDP_SOCKET, CLOSED_SOCKET = 1001, 1002, 1003


class SocketGenerator(TestCaseGenerator):
    name = "socket"

    def __init__(self):
        self._templates = [
            ValueTemplate(TCP_SOCKET, SOCK_TCP),
            ValueTemplate(UDP_SOCKET, SOCK_UDP),
            ValueTemplate(CLOSED_SOCKET, SOCK_CLOSED),
            ValueTemplate(-1, SOCK_CLOSED, "SOCK_CLOSED=-1"),
        ]

    def templates(self):
        return self._templates


# ----------------------------------------------------------------------
# 3. a socket-using "library function": send-ish semantics
# ----------------------------------------------------------------------

def libc_sock_send(ctx, sockfd: int, buf: int, length: int) -> int:
    """Sends length bytes: crashes for closed sockets (stale kernel
    object dereference), errors for UDP (wrong protocol here)."""
    payload_probe = ctx.mem.load(buf, min(length, 1)) if length else b""
    if sockfd == UDP_SOCKET:
        ctx.set_errno(EINVAL)
        return -1
    if sockfd != TCP_SOCKET:
        # Dereference of a freed socket object.
        raise SegmentationFault(0xC0C0DEAD, AccessKind.READ)
    ctx.step(length)
    return length


class PatchedInjector(FaultInjector):
    """An injector whose generator selection knows socket arguments —
    the hook point the paper's generator registration corresponds to."""

    def __init__(self, spec):
        super().__init__(spec)
        # argument 0 is the socket; replace the generic int generator.
        self.generators[0] = [SocketGenerator()]


@pytest.fixture()
def report(socket_family):
    spec = FunctionSpec(
        name="sock_send",
        prototype="long sock_send(int sockfd, const void *buf, size_t length);",
        model=libc_sock_send,
        headers=("sys/socket.h",),
    )
    return PatchedInjector(spec).run()


class TestSocketFamily:
    def test_injector_discovers_open_socket(self, report):
        """The new unified type is computed as the robust type without
        any changes to the core algorithms."""
        assert report.robust_types[0].robust == OPEN_SOCKET

    def test_other_arguments_unaffected(self, report):
        # buf is unconstrained (length=0 lets NULL "succeed", the
        # usual early-exit pattern); the size argument is confined to
        # reasonable values because huge lengths hang the send loop.
        assert report.robust_types[1].robust.family == "ptr"
        assert report.robust_types[2].robust.name in ("ANY_SIZE", "REASONABLE_SIZE")

    def test_errno_classification_still_works(self, report):
        assert report.errno_class.kind == "consistent"
        assert report.errno_class.error_value == -1

    def test_declaration_round_trips_new_types(self, report):
        from repro.declarations import FunctionDeclaration

        declaration = declaration_from_report(report)
        parsed = FunctionDeclaration.from_xml(declaration.to_xml())
        assert parsed.arguments[0].robust_type.name == "OPEN_SOCKET"

    def test_lattice_order_includes_new_edges(self, socket_family):
        from repro.typelattice import Lattice

        lattice = Lattice(
            [SOCK_TCP, SOCK_UDP, SOCK_CLOSED, OPEN_SOCKET, ANY_SOCKET]
        )
        assert lattice.is_subtype(SOCK_TCP, OPEN_SOCKET)
        assert lattice.is_subtype(SOCK_UDP, ANY_SOCKET)
        assert not lattice.is_subtype(SOCK_CLOSED, OPEN_SOCKET)
        assert lattice.weakest([SOCK_TCP, OPEN_SOCKET, ANY_SOCKET]) == [ANY_SOCKET]
