"""Tests for symbol tables, corpora and the extraction pipeline
(paper section 3)."""

import pytest

from repro.extract import Extractor, Route
from repro.headers import HeaderCorpus, build_header
from repro.manpages import ManPageCorpus, render_page, synopsis_headers
from repro.syslib import (
    SymbolTable,
    build_environment,
    extract_external_names,
    parse_objdump,
)


@pytest.fixture(scope="module")
def environment():
    return build_environment()


@pytest.fixture(scope="module")
def report(environment):
    return Extractor(environment).run()


class TestSymbolTable:
    def test_underscore_convention(self):
        table = SymbolTable("libtest.so")
        table.add("public_fn")
        table.add("_IO_internal")
        table.add("__libc_hidden")
        assert [s.name for s in table.external_functions()] == ["public_fn"]
        assert table.internal_fraction() == pytest.approx(2 / 3)

    def test_objdump_round_trip(self):
        table = SymbolTable("libc.so.6")
        table.add("strcpy")
        table.add("_IO_fflush")
        table.add("weak_fn", binding="w")
        text = table.objdump_output()
        parsed = parse_objdump(text)
        assert [s.name for s in parsed.symbols] == ["strcpy", "_IO_fflush", "weak_fn"]
        assert parsed.symbols[0].version == "GLIBC_2.2"
        assert extract_external_names(parsed) == ["strcpy", "weak_fn"]


class TestCorpora:
    def test_header_include_closure(self):
        corpus = HeaderCorpus()
        corpus.add("a.h", '#include <b.h>\nint fa(void);\n')
        corpus.add("b.h", '#include <c.h>\nint fb(void);\n')
        corpus.add("c.h", "int fc(void);\n")
        assert corpus.transitive_closure(["a.h"]) == ["a.h", "b.h", "c.h"]

    def test_header_builder_produces_parseable_text(self):
        from repro.cdecl import DeclarationParser, typedef_table

        text = build_header("test.h", ["int f(int x);", "char *g(void);"],
                            noise_macros=("FOO 1",))
        names = [p.name for p in DeclarationParser(typedef_table()).parse_header(text)]
        assert names == ["f", "g"]

    def test_man_page_synopsis_parsing(self):
        page = render_page("fopen", ["stdio.h", "stdlib.h"],
                           "FILE *fopen(const char *p, const char *m);")
        assert synopsis_headers(page) == ["stdio.h", "stdlib.h"]

    def test_synopsis_ignores_includes_outside_section(self):
        page = (
            "NAME\n   f - thing\nSYNOPSIS\n   #include <good.h>\n\n"
            "DESCRIPTION\n   Mentioning #include <bad.h> in prose.\n"
        )
        assert synopsis_headers(page) == ["good.h"]

    def test_man_corpus_coverage(self):
        corpus = ManPageCorpus()
        corpus.add("f", "page")
        assert corpus.coverage(["f", "g"]) == 0.5


class TestSyntheticEnvironment:
    def test_environment_is_deterministic(self, environment):
        again = build_environment()
        assert again.external_names == environment.external_names
        assert again.headers.paths() == environment.headers.paths()

    def test_modeled_functions_all_declared(self, environment):
        from repro.libc.catalog import CATALOG

        for spec in CATALOG:
            truth = environment.ground_truth[spec.name]
            assert truth.headers, f"{spec.name} declared nowhere"

    def test_ground_truth_consistency(self, environment):
        for truth in environment.ground_truth.values():
            if truth.has_man_page:
                assert environment.man_pages.page_for(truth.name) is not None
            if not truth.headers:
                # Declared nowhere implies: genuinely not in any header.
                for path in environment.headers.paths():
                    text = environment.headers.read(path)
                    assert f" {truth.name}(" not in text


class TestExtractionStatistics:
    """The section 3.1/3.2 percentages."""

    def test_internal_fraction_exceeds_34_percent(self, report):
        assert report.stats.internal_fraction > 0.34

    def test_man_coverage_near_51_percent(self, report):
        assert abs(report.stats.man_coverage - 0.511) < 0.005

    def test_man_defect_rates(self, report):
        assert abs(report.stats.man_no_header_fraction - 0.012) < 0.005
        assert abs(report.stats.man_wrong_header_fraction - 0.077) < 0.005

    def test_found_fraction_near_96_percent(self, report):
        assert abs(report.stats.found_fraction - 0.960) < 0.005

    def test_counts_are_consistent(self, report):
        stats = report.stats
        assert (
            stats.found_via_man + stats.found_via_search + stats.not_found
            == stats.external_functions
        )


class TestExtractionCorrectness:
    def test_all_modeled_functions_extracted(self, report):
        from repro.libc.catalog import CATALOG

        for spec in CATALOG:
            extracted = report.functions[spec.name]
            assert extracted.prototype is not None, spec.name
            assert extracted.prototype.name == spec.name

    def test_extracted_types_match_catalog(self, report):
        from repro.cdecl import DeclarationParser, typedef_table
        from repro.libc.catalog import BY_NAME

        parser = DeclarationParser(typedef_table())
        for name in ("asctime", "fopen", "qsort", "strtol", "tcgetattr"):
            expected = parser.parse_prototype(BY_NAME[name].prototype)
            extracted = report.prototypes()[name]
            assert extracted.ftype == expected.ftype, name

    def test_man_route_preferred_when_page_is_right(self, report, environment):
        for name, extracted in report.functions.items():
            truth = environment.ground_truth[name]
            if truth.has_man_page and truth.man_headers_correct and truth.headers:
                assert extracted.route is Route.MAN_PAGE, name

    def test_wrong_man_headers_fall_back_to_search(self, report, environment):
        fallback_cases = [
            name
            for name, truth in environment.ground_truth.items()
            if truth.has_man_page and not truth.man_headers_correct and truth.headers
        ]
        assert fallback_cases, "corpus must contain wrong-header pages"
        for name in fallback_cases:
            assert report.functions[name].route is Route.EXHAUSTIVE, name

    def test_nowhere_functions_not_found(self, report, environment):
        missing = [
            name for name, truth in environment.ground_truth.items()
            if not truth.headers
        ]
        assert missing
        for name in missing:
            assert report.functions[name].route is Route.NOT_FOUND
