"""Tests for the pluggable fault-model dictionary (repro.faults)."""

import json

import pytest

from repro.cdecl import DeclarationParser, typedef_table
from repro.declarations import FunctionDeclaration, declaration_from_report
from repro.faults import (
    FAULTS_VERSION,
    FaultModel,
    FaultScenario,
    ScenarioEvidence,
    available_models,
    canonical_fault_specs,
    faults_fingerprint,
    get_model,
    register_model,
    resolve_fault_models,
)
from repro.faults.model import (
    SCENARIO_VECTOR_CAP,
    format_parameter_index,
    function_pointer_indices,
    scenario_sample,
)
from repro.injector import FaultInjector
from repro.libc.catalog import BY_NAME

BUILTINS = ("bitflip", "callback", "ctype_table", "format", "resource", "signal")


def prototype_of(name: str):
    parser = DeclarationParser(typedef_table())
    return parser.parse_prototype(BY_NAME[name].prototype)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_models()
        assert set(BUILTINS) <= set(names)
        assert names == tuple(sorted(names))

    def test_unknown_model_names_the_alternatives(self):
        with pytest.raises(KeyError, match="resource"):
            get_model("nosuchmodel")

    def test_name_collision_refused(self):
        class Imposter(FaultModel):
            name = "resource"

        with pytest.raises(ValueError, match="already registered"):
            register_model(Imposter)

    def test_reregistration_is_idempotent(self):
        cls = get_model("resource")
        assert register_model(cls) is cls

    def test_unknown_parameter_refused(self):
        with pytest.raises(ValueError, match="no parameter"):
            get_model("signal")(bogus=1)


class TestSpecParsing:
    def test_comma_string_resolves_sorted(self):
        models = resolve_fault_models("signal,resource")
        assert [m.name for m in models] == ["resource", "signal"]

    def test_order_does_not_change_identity(self):
        assert canonical_fault_specs("signal,resource") == canonical_fault_specs(
            ["resource", "signal"]
        )

    def test_empty_inputs_mean_no_models(self):
        assert resolve_fault_models(None) == ()
        assert resolve_fault_models("") == ()
        assert resolve_fault_models(()) == ()

    def test_parameters_parse_and_coerce(self):
        (model,) = resolve_fault_models("signal:reenter=0:offsets=1|64")
        assert model.params["reenter"] == 0
        assert model.params["offsets"] == "1|64"

    def test_duplicate_model_refused(self):
        with pytest.raises(ValueError, match="more than once"):
            resolve_fault_models("resource,resource")

    def test_bad_parameter_syntax_refused(self):
        with pytest.raises(ValueError, match="key=value"):
            resolve_fault_models("signal:offsets")

    def test_spec_string_round_trips(self):
        for spec in canonical_fault_specs("signal:reenter=0,resource:mallocs=2"):
            (model,) = resolve_fault_models(spec)
            assert model.spec_string() == spec

    def test_default_parameters_are_elided(self):
        (model,) = resolve_fault_models("signal")
        assert model.spec_string() == "signal"

    def test_instances_pass_through(self):
        instance = get_model("resource")(mallocs=3)
        (model,) = resolve_fault_models([instance])
        assert model is instance


class TestFingerprint:
    def test_empty_set_fingerprint(self):
        fingerprint = faults_fingerprint(())
        assert fingerprint["version"] == FAULTS_VERSION
        assert fingerprint["cap"] == SCENARIO_VECTOR_CAP
        assert fingerprint["models"] == []

    def test_parameters_fold_in(self):
        a = faults_fingerprint("signal")
        b = faults_fingerprint("signal:offsets=7")
        assert a != b

    def test_model_sets_distinct(self):
        assert faults_fingerprint("resource") != faults_fingerprint("signal")
        assert faults_fingerprint("resource,signal") != faults_fingerprint("resource")


class TestScenarios:
    def test_deterministic_in_the_spec(self):
        for name in BUILTINS:
            model = get_model(name)()
            spec = BY_NAME["fopen"]
            prototype = prototype_of("fopen")
            assert model.scenarios(spec, prototype) == model.scenarios(spec, prototype)

    def test_callback_model_needs_a_function_pointer(self):
        model = get_model("callback")()
        assert model.scenarios(BY_NAME["qsort"], prototype_of("qsort"))
        assert not model.scenarios(BY_NAME["strlen"], prototype_of("strlen"))

    def test_format_model_needs_a_printf_prototype(self):
        model = get_model("format")()
        assert model.scenarios(BY_NAME["sprintf"], prototype_of("sprintf"))
        assert not model.scenarios(BY_NAME["strcpy"], prototype_of("strcpy"))

    def test_scenario_keys_are_namespaced(self):
        model = get_model("resource")()
        for scenario in model.scenarios(BY_NAME["fopen"], prototype_of("fopen")):
            assert scenario.key == f"resource:{scenario.label}"

    def test_scenario_sample_is_a_deterministic_stride(self):
        pool = list(range(100))
        sample = scenario_sample(pool, cap=10)
        assert sample == scenario_sample(pool, cap=10)
        assert len(sample) == 10
        assert sample == sorted(sample)
        assert scenario_sample([1, 2, 3], cap=10) == [1, 2, 3]

    def test_prototype_introspection_helpers(self):
        assert function_pointer_indices(prototype_of("qsort")) == (3,)
        assert function_pointer_indices(prototype_of("strlen")) == ()
        assert format_parameter_index(prototype_of("sprintf")) == 1
        assert format_parameter_index(prototype_of("abs")) is None


class TestScenarioEvidence:
    def test_unsafe_needs_failures_beyond_baseline(self):
        base = dict(model="signal", scenario="offset-1", vectors=8)
        assert ScenarioEvidence(crashes=1, hangs=0, **base).unsafe
        assert ScenarioEvidence(crashes=0, hangs=1, **base).unsafe
        assert not ScenarioEvidence(crashes=0, hangs=0, **base).unsafe
        assert not ScenarioEvidence(
            crashes=1, hangs=0, baseline_failures=1, **base
        ).unsafe

    def test_key(self):
        evidence = ScenarioEvidence("resource", "malloc_null", 8, 2, 0)
        assert evidence.key == "resource:malloc_null"


class TestInjectorEvidence:
    def test_unarmed_run_has_no_evidence(self):
        report = FaultInjector(BY_NAME["fopen"], max_vectors=24).run()
        assert report.fault_evidence == []
        assert report.unsafe_scenarios == ()

    def test_armed_run_leaves_the_baseline_untouched(self):
        plain = FaultInjector(BY_NAME["fopen"], max_vectors=24).run()
        armed = FaultInjector(
            BY_NAME["fopen"], max_vectors=24, fault_models="resource,signal"
        ).run()
        assert armed.robust_types == plain.robust_types
        assert armed.vectors_run == plain.vectors_run
        assert armed.crashes == plain.crashes
        assert armed.hangs == plain.hangs
        assert armed.unsafe == plain.unsafe
        assert armed.errno_class == plain.errno_class

    def test_armed_run_collects_per_scenario_evidence(self):
        report = FaultInjector(
            BY_NAME["fopen"], max_vectors=24, fault_models="resource"
        ).run()
        assert report.fault_evidence
        keys = {evidence.key for evidence in report.fault_evidence}
        assert "resource:malloc_null" in keys
        assert all(evidence.vectors > 0 for evidence in report.fault_evidence)

    def test_malloc_exhaustion_condemns_fopen(self):
        report = FaultInjector(
            BY_NAME["fopen"], max_vectors=24, fault_models="resource"
        ).run()
        assert "resource:malloc_null" in report.unsafe_scenarios

    def test_evidence_is_deterministic(self):
        run = lambda: FaultInjector(  # noqa: E731
            BY_NAME["fopen"], max_vectors=24, fault_models="resource,signal"
        ).run()
        assert run().fault_evidence == run().fault_evidence


class TestDeclarationScenarios:
    def test_declaration_carries_unsafe_scenarios(self):
        report = FaultInjector(
            BY_NAME["fopen"], max_vectors=24, fault_models="resource"
        ).run()
        declaration = declaration_from_report(report)
        assert declaration.unsafe_scenarios == report.unsafe_scenarios
        assert declaration.scenario_unsafe == bool(report.unsafe_scenarios)

    def test_xml_round_trip(self):
        report = FaultInjector(
            BY_NAME["fopen"], max_vectors=24, fault_models="resource"
        ).run()
        declaration = declaration_from_report(report)
        parsed = FunctionDeclaration.from_xml(declaration.to_xml())
        assert parsed.unsafe_scenarios == declaration.unsafe_scenarios

    def test_plain_declaration_is_not_scenario_unsafe(self):
        report = FaultInjector(BY_NAME["fopen"], max_vectors=24).run()
        declaration = declaration_from_report(report)
        assert declaration.unsafe_scenarios == ()
        assert not declaration.scenario_unsafe
        assert "<unsafe_scenarios>" not in declaration.to_xml()


class TestCli:
    def test_faults_list(self, capsys):
        from repro.cli import main

        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTINS:
            assert name in out

    def test_faults_list_json(self, capsys):
        from repro.cli import main

        assert main(["faults", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["name"] for row in rows} >= set(BUILTINS)
        for row in rows:
            assert row["version"] >= 1
            assert row["description"]

    def test_inject_refuses_unknown_model(self, capsys):
        from repro.cli import main

        assert main(["inject", "atoi", "--fault-models", "nosuchmodel"]) == 2
        assert "unknown fault model" in capsys.readouterr().err

    def test_inject_reports_unsafe_scenarios(self, capsys):
        from repro.cli import main

        assert main(["inject", "fopen", "--fault-models", "resource", "--json"]) == 0
        (row,) = json.loads(capsys.readouterr().out)
        assert "resource:malloc_null" in row["unsafe_scenarios"]
