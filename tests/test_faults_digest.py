"""Digest honesty for armed fault models: faulted, unfaulted, cached
and fleeted campaigns must never alias (repro.campaign x repro.faults).

The last class is the PR acceptance criterion: a process-fleet
campaign under ``resource,signal`` is bit-identical to the serial run
of the same flags, and its outcome digests differ from the no-faults
digests.
"""

import multiprocessing as mp

import pytest

from repro.campaign import CampaignConfig, CampaignRunner, outcome_digest
from repro.fleet.wire import ShardSpec, fleet_fingerprints
from repro.libc.catalog import BY_NAME

#: Cheap functions with distinct fault-model surfaces: fopen mallocs
#: (resource), qsort takes a callback, sprintf takes a format.
FUNCTIONS = ["abs", "atoi", "fopen", "qsort", "sprintf"]
MAX_VECTORS = 24

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="process fleets need the fork start method",
)


class TestOutcomeDigest:
    def test_armed_models_change_the_digest(self):
        spec = BY_NAME["fopen"]
        assert outcome_digest(spec, fault_models="resource") != outcome_digest(spec)

    def test_each_model_changes_the_digest_differently(self):
        spec = BY_NAME["fopen"]
        digests = {
            outcome_digest(spec, fault_models=models)
            for models in ("resource", "signal", "ctype_table", "resource,signal")
        }
        assert len(digests) == 4

    def test_parameters_change_the_digest(self):
        spec = BY_NAME["fopen"]
        assert outcome_digest(spec, fault_models="signal") != outcome_digest(
            spec, fault_models="signal:offsets=7"
        )

    def test_empty_model_set_leaves_the_digest_alone(self):
        # The pre-faults cache population must stay valid: an unarmed
        # campaign's digests are byte-identical to a build where the
        # faults subsystem does not exist.
        spec = BY_NAME["fopen"]
        assert outcome_digest(spec) == outcome_digest(spec, fault_models=())
        assert outcome_digest(spec) == outcome_digest(spec, fault_models=None)

    def test_spec_order_does_not_change_the_digest(self):
        spec = BY_NAME["fopen"]
        assert outcome_digest(spec, fault_models="signal,resource") == outcome_digest(
            spec, fault_models="resource,signal"
        )


class TestWire:
    def test_fingerprints_carry_the_faults_version(self):
        from repro.faults import FAULTS_VERSION

        assert fleet_fingerprints()["faults"] == FAULTS_VERSION

    def test_shard_spec_round_trips_fault_models(self):
        shard = ShardSpec.build(
            shard_id="c/0",
            campaign="c",
            seed=0,
            max_vectors=MAX_VECTORS,
            functions=("abs",),
            digests=("d",),
            fault_models=("resource", "signal:offsets=1|64"),
        )
        decoded = ShardSpec.decode(shard.encode())
        assert decoded.fault_models == ("resource", "signal:offsets=1|64")


def run_campaign(tmp_path, subdir, **config):
    runner = CampaignRunner(
        functions=FUNCTIONS,
        config=CampaignConfig(
            cache_dir=tmp_path / subdir, max_vectors=MAX_VECTORS, **config
        ),
    )
    return runner.run()


def digests_of(result):
    return {name: outcome.digest for name, outcome in result.outcomes.items()}


class TestCampaignHonesty:
    def test_faulted_digests_differ_from_unfaulted(self, tmp_path):
        plain = run_campaign(tmp_path, "plain")
        armed = run_campaign(tmp_path, "armed", fault_models=("resource",))
        for name in FUNCTIONS:
            assert digests_of(plain)[name] != digests_of(armed)[name]

    def test_cache_round_trips_fault_evidence(self, tmp_path):
        first = run_campaign(tmp_path, "cache", fault_models=("resource", "signal"))
        second = run_campaign(tmp_path, "cache", fault_models=("resource", "signal"))
        assert second.cache_hits == len(FUNCTIONS)
        for name in FUNCTIONS:
            assert second.reports[name].fault_evidence == first.reports[name].fault_evidence
            assert second.reports[name] == first.reports[name]

    def test_result_records_the_armed_models(self, tmp_path):
        result = run_campaign(tmp_path, "spec", fault_models=("signal:reenter=0",))
        assert result.fault_models == ("signal:reenter=0",)
        assert run_campaign(tmp_path, "plain2").fault_models == ()


@needs_fork
class TestAcceptance:
    """campaign run --fault-models resource,signal --fleet processes
    is bit-identical to the serial run and digests differ from the
    no-faults campaign (ISSUE acceptance criterion)."""

    def test_process_fleet_is_bit_identical_to_serial(self, tmp_path):
        models = ("resource", "signal")
        serial = run_campaign(tmp_path, "serial", fault_models=models)
        fleet = run_campaign(
            tmp_path, "fleet", fault_models=models,
            jobs=2, fleet="processes", workers=2,
        )
        plain = run_campaign(tmp_path, "nofaults")
        assert fleet.fleet_mode == "processes"
        assert digests_of(fleet) == digests_of(serial)
        assert fleet.reports == serial.reports
        assert digests_of(fleet) != digests_of(plain)
