"""Tests for the shard broker (lease-based remote work distribution)."""

import pytest

from repro.fleet import FingerprintMismatch, FunctionResult, ShardSpec
from repro.fleet import fleet_fingerprints
from repro.fleet.broker import BrokerError, ShardBroker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_shards(campaign="camp", functions=("a", "b", "c"), workers=2):
    names = list(functions)
    stripes = [names[i::workers] for i in range(min(workers, len(names)))]
    return [
        ShardSpec.build(
            shard_id=f"{campaign}/{i}",
            campaign=campaign,
            seed=0,
            max_vectors=8,
            functions=stripe,
            digests=[f"d-{n}" for n in stripe],
        )
        for i, stripe in enumerate(stripes)
    ]


def ok_result(shard, name, attempt=None):
    return FunctionResult(
        function=name,
        digest=shard.digest_for(name),
        status="ok",
        attempt=attempt or shard.attempt_for(name),
        elapsed=0.01,
        payload={"function": name},
    )


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(clock):
    return ShardBroker(lease_ttl=30.0, clock=clock)


def register(broker, name="worker"):
    return broker.register(name, fleet_fingerprints())["worker_id"]


class TestRegistration:
    def test_register_returns_id_and_ttl(self, broker):
        granted = broker.register("w", fleet_fingerprints())
        assert granted["worker_id"] == "w1"
        assert granted["lease_ttl"] == 30.0

    def test_fingerprint_skew_refused(self, broker):
        with pytest.raises(FingerprintMismatch):
            broker.register("w", dict(fleet_fingerprints(), lattice=-9))

    def test_unknown_worker_refused(self, broker):
        with pytest.raises(BrokerError, match="unknown worker"):
            broker.lease("w99")


class TestLeasing:
    def test_lease_drains_queue_then_none(self, broker):
        worker = register(broker)
        broker.submit(make_shards())
        first = broker.lease(worker)
        second = broker.lease(worker)
        assert {first.shard_id, second.shard_id} == {"camp/0", "camp/1"}
        assert broker.lease(worker) is None

    def test_submit_is_idempotent(self, broker):
        shards = make_shards()
        assert broker.submit(shards)["queued"] == 2
        again = broker.submit(shards)
        assert again["deduped"] is True
        assert again["queued"] == 0

    def test_submit_rejects_split_campaigns(self, broker):
        mixed = make_shards("one") + make_shards("two")
        with pytest.raises(BrokerError, match="one campaign"):
            broker.submit(mixed)

    def test_results_stream_in_arrival_order(self, broker):
        worker = register(broker)
        broker.submit(make_shards())
        shard = broker.lease(worker)
        for name in shard.functions:
            assert broker.record_result(
                "camp", ok_result(shard, name), worker_id=worker
            )
        page = broker.collect("camp", after=0)
        assert [r["function"] for r in page["results"]] == list(shard.functions)
        assert page["seq"] == len(shard.functions)
        assert not page["done"]
        # Incremental collect returns only the suffix.
        assert broker.collect("camp", after=page["seq"])["results"] == []

    def test_duplicate_result_rejected(self, broker):
        worker = register(broker)
        broker.submit(make_shards())
        shard = broker.lease(worker)
        result = ok_result(shard, shard.functions[0])
        assert broker.record_result("camp", result, worker_id=worker)
        assert not broker.record_result("camp", result, worker_id=worker)

    def test_foreign_function_refused(self, broker):
        worker = register(broker)
        broker.submit(make_shards())
        shard = broker.lease(worker)
        bogus = FunctionResult(
            function="zzz", digest="d", status="ok", attempt=1, elapsed=0.0,
            payload={},
        )
        with pytest.raises(BrokerError, match="not part of"):
            broker.record_result("camp", bogus, worker_id=worker)
        assert shard is not None


class TestLeaseExpiry:
    def test_expiry_requeues_with_bumped_attempt(self, broker, clock):
        dead = register(broker, "dead")
        broker.submit(make_shards(functions=("a", "b"), workers=1))
        shard = broker.lease(dead)
        assert shard.attempt_for("a") == 1

        clock.advance(31.0)
        survivor = register(broker, "survivor")
        retry = broker.lease(survivor)
        assert retry is not None
        assert set(retry.functions) == {"a", "b"}
        assert retry.attempt_for("a") == 2
        assert retry.shard_id != shard.shard_id
        assert broker.lease_expiries == 1
        assert broker.reshard_count == 1

    def test_heartbeat_renews_lease(self, broker, clock):
        worker = register(broker)
        broker.submit(make_shards(functions=("a",), workers=1))
        assert broker.lease(worker) is not None
        clock.advance(20.0)
        assert broker.heartbeat(worker)["renewed"] == 1
        clock.advance(20.0)   # 40s total, but renewed at t+20
        assert broker.expire() == 0

    def test_reported_functions_do_not_requeue(self, broker, clock):
        worker = register(broker)
        broker.submit(make_shards(functions=("a", "b"), workers=1))
        shard = broker.lease(worker)
        broker.record_result("camp", ok_result(shard, "a"), worker_id=worker)
        clock.advance(31.0)
        assert broker.expire() == 1
        retry = broker.lease(worker)
        assert list(retry.functions) == ["b"]

    def test_retry_budget_exhaustion_fails_function(self, broker, clock):
        worker = register(broker)
        broker.submit(make_shards(functions=("a",), workers=1), task_retries=1)
        broker.lease(worker)
        clock.advance(31.0)       # attempt 1 expires -> attempt 2 queued
        assert broker.lease(worker) is not None
        clock.advance(31.0)       # attempt 2 expires -> budget spent
        broker.expire()
        page = broker.collect("camp")
        assert page["done"]
        (failure,) = page["results"]
        assert failure["status"] == "failed"
        assert "lease expired" in failure["error"]

    def test_late_result_after_expiry_still_lands(self, broker, clock):
        # At-least-once: the expired worker may still be alive; its late
        # report wins iff no retry finished first (results are
        # bit-identical either way).
        worker = register(broker)
        broker.submit(make_shards(functions=("a",), workers=1))
        shard = broker.lease(worker)
        clock.advance(31.0)
        broker.expire()
        assert broker.record_result("camp", ok_result(shard, "a"))
        assert broker.collect("camp")["done"]


class TestCompleteAndCache:
    def test_complete_releases_lease(self, broker):
        worker = register(broker)
        broker.submit(make_shards(functions=("a",), workers=1))
        shard = broker.lease(worker)
        broker.record_result("camp", ok_result(shard, "a"), worker_id=worker)
        assert broker.complete(worker, shard.shard_id)["released"]
        assert not broker.complete(worker, shard.shard_id)["released"]

    def test_complete_requeues_stragglers(self, broker):
        # A worker that completes without reporting everything (chaos,
        # bugs) loses the lease; unreported functions go back to work.
        worker = register(broker)
        broker.submit(make_shards(functions=("a", "b"), workers=1))
        shard = broker.lease(worker)
        broker.record_result("camp", ok_result(shard, "a"), worker_id=worker)
        broker.complete(worker, shard.shard_id)
        retry = broker.lease(worker)
        assert list(retry.functions) == ["b"]

    def test_cache_satisfaction_skips_workers(self, broker):
        worker = register(broker)
        broker.submit(make_shards(functions=("a", "b"), workers=1))
        assert broker.satisfy_from_cache("camp", "a", {"cached": True})
        shard = broker.lease(worker)
        assert list(shard.functions) == ["b"]
        page = broker.collect("camp")
        assert page["results"][0]["source"] == "cache"
        # Terminal functions cannot be re-satisfied.
        assert not broker.satisfy_from_cache("camp", "a", {})

    def test_forget_drops_campaign_and_leases(self, broker):
        worker = register(broker)
        broker.submit(make_shards())
        broker.lease(worker)
        assert broker.forget("camp")
        assert not broker.forget("camp")
        with pytest.raises(BrokerError, match="unknown campaign"):
            broker.collect("camp")
        assert broker.status()["shards_leased"] == 0


class TestStatus:
    def test_status_reports_fleet_shape(self, broker, clock):
        worker = register(broker, "alpha")
        broker.submit(make_shards())
        broker.lease(worker)
        status = broker.status()
        assert status["workers_alive"] == 1
        assert status["shards_leased"] == 1
        assert status["shards_queued"] == 1
        assert status["campaigns"]["camp"]["pending"] == 3
        assert status["workers"]["w1"]["name"] == "alpha"
        clock.advance(100.0)
        assert broker.status()["workers_alive"] == 0
