"""Tests for the process fleet: bit-identical merges, worker death
(kill -9) recovery, deadlines, and retry budgets."""

import multiprocessing as mp
import time

import pytest

from repro.campaign import CampaignConfig, CampaignRunner
from repro.fleet import run_fleet
from repro.fleet.process import run_process_fleet
from repro.fleet.worker import CHAOS_ENV, execute_function
from repro.fleet.wire import FunctionResult
from repro.obs.telemetry import Telemetry

#: Cheap catalog functions — the whole set injects in well under a
#: second, so supervised-fleet tests stay tier-1 fast.
FUNCTIONS = ["abs", "labs", "atoi", "isdigit", "toupper", "strcpy"]
MAX_VECTORS = 24
DIGESTS = {name: f"digest-{name}" for name in FUNCTIONS}

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker-side monkeypatching needs the fork start method",
)


@pytest.fixture(scope="module")
def serial_payloads():
    """The ground truth: every function executed serially in-process."""
    return {
        name: execute_function(name, DIGESTS[name], 0, MAX_VECTORS).payload
        for name in FUNCTIONS
    }


def run_fleet_payloads(telemetry=None, **overrides):
    options = dict(
        campaign="test-fleet",
        workers=2,
        seed=0,
        max_vectors=MAX_VECTORS,
        timeout=60.0,
        task_retries=1,
    )
    options.update(overrides)
    if telemetry is not None:
        options["telemetry"] = telemetry
    return run_process_fleet(FUNCTIONS, DIGESTS, **options)


class TestBitIdentical:
    def test_matches_serial_execution(self, serial_payloads):
        results = run_fleet_payloads()
        assert set(results) == set(FUNCTIONS)
        for name, result in results.items():
            assert result.ok, result.error
            assert result.attempts == 1
            assert result.payload == serial_payloads[name]

    def test_worker_count_does_not_change_results(self, serial_payloads):
        results = run_fleet_payloads(workers=3)
        assert {n: r.payload for n, r in results.items()} == serial_payloads

    def test_empty_campaign(self):
        assert run_process_fleet(
            [], {}, campaign="empty", workers=2, max_vectors=MAX_VECTORS
        ) == {}

    def test_unknown_mode_refused(self):
        with pytest.raises(ValueError, match="unknown fleet mode"):
            run_fleet(
                "hovercraft", FUNCTIONS, DIGESTS, campaign="x", workers=1,
                max_vectors=MAX_VECTORS, timeout=None, task_retries=0,
            )


class TestWorkerDeath:
    def test_kill9_mid_shard_recovers_bit_identical(
        self, serial_payloads, monkeypatch
    ):
        # Every worker SIGKILLs itself after one completed function —
        # the campaign only finishes if reshard-and-retry keeps
        # replacing the dead, and the merge must not notice.
        monkeypatch.setenv(CHAOS_ENV, "kill-after:1")
        telemetry = Telemetry()
        results = run_fleet_payloads(telemetry=telemetry)
        assert {n: r.payload for n, r in results.items()} == serial_payloads
        assert all(r.ok for r in results.values())
        spawned = telemetry.counter("fleet.workers_spawned").value
        assert spawned > 2, f"only {spawned} workers spawned — nobody died?"
        assert telemetry.counter("fleet.reshard_count").value >= 1


@needs_fork
class TestDeadlinesAndRetries:
    def test_hung_function_hits_deadline(self, monkeypatch):
        def fake_execute(name, digest, seed, max_vectors, attempt=1, worker="",
                         fault_models=(), sampling=None):
            if name == "abs":
                time.sleep(60.0)
            return execute_function(
                name, digest, seed, max_vectors, attempt, worker, fault_models,
                sampling,
            )

        monkeypatch.setattr(
            "repro.fleet.process.execute_function", fake_execute
        )
        telemetry = Telemetry()
        results = run_fleet_payloads(
            telemetry=telemetry, timeout=0.5, task_retries=0
        )
        assert not results["abs"].ok
        assert "retry budget" in results["abs"].error
        assert all(results[n].ok for n in FUNCTIONS if n != "abs")

    def test_transient_failure_retries_on_fresh_worker(self, monkeypatch):
        def fake_execute(name, digest, seed, max_vectors, attempt=1, worker="",
                         fault_models=(), sampling=None):
            if name == "abs" and attempt == 1:
                return FunctionResult(
                    function=name, digest=digest, status="failed",
                    attempt=attempt, elapsed=0.0, error="transient",
                )
            return execute_function(
                name, digest, seed, max_vectors, attempt, worker, fault_models,
                sampling,
            )

        monkeypatch.setattr(
            "repro.fleet.process.execute_function", fake_execute
        )
        results = run_fleet_payloads(task_retries=1)
        assert results["abs"].ok
        assert results["abs"].attempts == 2

    def test_exhausted_retries_fail_terminally(self, monkeypatch):
        def fake_execute(name, digest, seed, max_vectors, attempt=1, worker="",
                         fault_models=(), sampling=None):
            if name == "abs":
                return FunctionResult(
                    function=name, digest=digest, status="failed",
                    attempt=attempt, elapsed=0.0, error="always broken",
                )
            return execute_function(
                name, digest, seed, max_vectors, attempt, worker, fault_models,
                sampling,
            )

        monkeypatch.setattr(
            "repro.fleet.process.execute_function", fake_execute
        )
        results = run_fleet_payloads(task_retries=1)
        assert not results["abs"].ok
        assert "always broken" in results["abs"].error
        assert results["abs"].attempts == 2


class TestCampaignIntegration:
    def test_process_campaign_bit_identical_to_serial(self):
        names = ["abs", "labs", "atoi"]
        serial = CampaignRunner(names, CampaignConfig()).run()
        fleet = CampaignRunner(
            names, CampaignConfig(fleet="processes", workers=2)
        ).run()
        assert fleet.failed == {}
        assert list(fleet.reports) == names
        assert fleet.reports == serial.reports
        assert fleet.fleet_mode == "processes"
        assert serial.fleet_mode == "serial"

    def test_thread_campaign_bit_identical_to_serial(self):
        names = ["abs", "labs", "atoi"]
        serial = CampaignRunner(names, CampaignConfig()).run()
        fleet = CampaignRunner(
            names, CampaignConfig(fleet="threads", workers=3)
        ).run()
        assert fleet.reports == serial.reports
        assert fleet.fleet_mode == "threads"
        assert fleet.workers == 3
