"""Tests for the remote fleet: worker ops over the v1 protocol, lease
expiry reassignment end to end, fleet-wide cache dedup, and the
self-hosted `run_remote_fleet` path."""

import time

import pytest

from repro.fleet import ShardSpec, fleet_fingerprints
from repro.fleet.remote import parse_address, run_remote_fleet
from repro.fleet.worker import execute_function
from repro.service import ServiceClient, ServiceConfig, ServiceError, serve_in_thread

FUNCTIONS = ["abs", "labs", "atoi"]
MAX_VECTORS = 24

#: Short lease so expiry tests wait fractions of a second, not 30s.
LEASE_TTL = 0.6


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    handle = serve_in_thread(
        ServiceConfig(
            port=0,
            lease_ttl=LEASE_TTL,
            cache_dir=tmp_path_factory.mktemp("fleet-cache"),
        )
    )
    yield handle
    handle.stop()


@pytest.fixture()
def client(service):
    with ServiceClient(*service.address) as open_client:
        yield open_client


def make_shards(campaign, functions=FUNCTIONS, digests=None):
    # Digests default to campaign-unique values: the daemon's outcome
    # store dedups fleet-wide by digest, and most tests here want their
    # functions to actually reach a worker.
    digests = digests or {n: f"digest-{campaign}-{n}" for n in functions}
    return [
        ShardSpec.build(
            shard_id=f"{campaign}/0",
            campaign=campaign,
            seed=0,
            max_vectors=MAX_VECTORS,
            functions=functions,
            digests=[digests[n] for n in functions],
        )
    ]


def register(client, name="test-worker"):
    granted = client.worker_register(name, fleet_fingerprints())
    assert granted["lease_ttl"] == LEASE_TTL
    return granted["worker_id"]


def drive_worker(client, worker_id, campaign):
    """Play one worker by hand: lease, execute, stream, complete."""
    executed = []
    while True:
        leased = client.worker_lease(worker_id)
        doc = leased.get("shard")
        if doc is None:
            return executed
        shard = ShardSpec.decode(doc)
        for name in shard.functions:
            result = execute_function(
                name, shard.digest_for(name), shard.seed, shard.max_vectors,
                shard.attempt_for(name), worker=worker_id,
            )
            client.worker_result(
                worker_id, campaign, shard.shard_id, result.encode()
            )
            executed.append(name)
        client.worker_complete(worker_id, shard.shard_id)


class TestWorkerOps:
    def test_register_lease_result_complete(self, client):
        campaign = "proto-roundtrip"
        worker = register(client)
        submitted = client.fleet_submit(
            [s.encode() for s in make_shards(campaign)]
        )
        assert submitted["queued"] == 1
        assert submitted["cached"] == 0
        assert drive_worker(client, worker, campaign) == FUNCTIONS

        page = client.fleet_collect(campaign)
        assert page["done"]
        assert [r["function"] for r in page["results"]] == FUNCTIONS
        assert all(r["status"] == "ok" for r in page["results"])
        assert client.fleet_forget(campaign)["forgotten"]

    def test_fingerprint_skew_refused_at_register(self, client):
        with pytest.raises(ServiceError) as err:
            client.worker_register(
                "foreign", dict(fleet_fingerprints(), schema=-5)
            )
        assert "refusing" in str(err.value)

    def test_unknown_worker_refused(self, client):
        with pytest.raises(ServiceError):
            client.worker_lease("w-does-not-exist")

    def test_fleet_status_over_protocol(self, client):
        status = client.fleet_status()
        assert status["lease_ttl"] == LEASE_TTL
        assert {"workers_alive", "shards_leased", "lease_expiries",
                "reshard_count"} <= set(status)


class TestLeaseExpiry:
    def test_expired_lease_reassigns_with_bumped_attempt(self, client):
        campaign = "proto-expiry"
        client.fleet_submit([s.encode() for s in make_shards(campaign)])
        dead = register(client, "doomed")
        leased = ShardSpec.decode(client.worker_lease(dead)["shard"])
        assert leased.attempt_for("abs") == 1

        # The doomed worker never heartbeats; its lease lapses and the
        # shard returns to the queue for the survivor, attempts bumped.
        time.sleep(LEASE_TTL + 0.3)
        survivor = register(client, "survivor")
        retry = ShardSpec.decode(client.worker_lease(survivor)["shard"])
        assert set(retry.functions) == set(FUNCTIONS)
        assert retry.attempt_for("abs") == 2
        assert retry.shard_id != leased.shard_id
        assert client.fleet_status()["lease_expiries"] >= 1

        # The survivor finishes the retry shard it already holds.
        for name in retry.functions:
            result = execute_function(
                name, retry.digest_for(name), retry.seed, retry.max_vectors,
                retry.attempt_for(name), worker=survivor,
            )
            client.worker_result(
                survivor, campaign, retry.shard_id, result.encode()
            )
        client.worker_complete(survivor, retry.shard_id)
        assert client.fleet_collect(campaign)["done"]
        client.fleet_forget(campaign)


class TestFleetCache:
    def test_submit_satisfies_from_outcome_store(self, client):
        # Campaign A computes everything; the daemon persists each ok
        # payload by digest.  Campaign B reuses two digests — those
        # functions never reach a worker.
        shared = {n: f"digest-shared-{n}" for n in FUNCTIONS}
        worker = register(client)
        client.fleet_submit(
            [s.encode() for s in make_shards("cache-a", digests=shared)]
        )
        assert drive_worker(client, worker, "cache-a") == FUNCTIONS
        client.fleet_forget("cache-a")

        submitted = client.fleet_submit(
            [s.encode() for s in make_shards("cache-b", digests=shared)]
        )
        assert submitted["cached"] == len(FUNCTIONS)
        page = client.fleet_collect("cache-b")
        assert page["done"]
        assert all(r["source"] == "cache" for r in page["results"])
        assert drive_worker(client, worker, "cache-b") == []
        client.fleet_forget("cache-b")


class TestRunRemoteFleet:
    def test_parse_address(self):
        assert parse_address("example.org:4040") == ("example.org", 4040)
        with pytest.raises(ValueError):
            parse_address("no-port")

    def test_self_hosted_fleet_bit_identical(self, tmp_path):
        digests = {n: f"digest-e2e-{n}" for n in FUNCTIONS}
        serial = {
            name: execute_function(
                name, digests[name], 0, MAX_VECTORS
            ).payload
            for name in FUNCTIONS
        }
        results = run_remote_fleet(
            FUNCTIONS, digests,
            campaign="remote-e2e",
            workers=2,
            seed=0,
            max_vectors=MAX_VECTORS,
            task_retries=1,
            cache_dir=tmp_path / "store",
        )
        assert set(results) == set(FUNCTIONS)
        for name, result in results.items():
            assert result.ok, result.error
            assert result.payload == serial[name]
