"""Tests for the fleet wire format (shard/result serialization)."""

import json
import pickle

import pytest

from repro.fleet import (
    WIRE_VERSION,
    FingerprintMismatch,
    FunctionResult,
    ShardSpec,
    WireError,
    build_shards,
    fleet_fingerprints,
    verify_fingerprints,
)


def make_shard(**overrides):
    spec = dict(
        shard_id="camp/0",
        campaign="camp",
        seed=7,
        max_vectors=24,
        functions=["strcpy", "memcpy"],
        digests=["d-strcpy", "d-memcpy"],
    )
    spec.update(overrides)
    return ShardSpec.build(**spec)


class TestShardRoundTrip:
    def test_encode_decode_is_identity(self):
        shard = make_shard(attempts=[1, 3])
        assert ShardSpec.decode(shard.encode()) == shard

    def test_decode_survives_json_boundary(self):
        shard = make_shard()
        wired = json.loads(json.dumps(shard.encode()))
        assert ShardSpec.decode(wired) == shard

    def test_digest_stable_across_json(self):
        shard = make_shard()
        again = ShardSpec.decode(json.loads(json.dumps(shard.encode())))
        assert again.digest() == shard.digest()

    def test_digest_stable_across_pickle(self):
        shard = make_shard(attempts=[2, 2])
        clone = pickle.loads(pickle.dumps(shard))
        assert clone == shard
        assert clone.digest() == shard.digest()

    def test_digest_sees_every_field(self):
        base = make_shard()
        assert make_shard(seed=8).digest() != base.digest()
        assert make_shard(max_vectors=25).digest() != base.digest()
        assert make_shard(attempts=[2, 1]).digest() != base.digest()
        assert make_shard(shard_id="camp/1").digest() != base.digest()

    def test_default_attempts_are_first(self):
        assert make_shard().attempts == (1, 1)

    def test_lookup_helpers(self):
        shard = make_shard(attempts=[1, 4])
        assert shard.digest_for("memcpy") == "d-memcpy"
        assert shard.attempt_for("memcpy") == 4


class TestShardValidation:
    def test_mismatched_digests_refused(self):
        with pytest.raises(WireError):
            make_shard(digests=["only-one"])

    def test_mismatched_attempts_refused(self):
        with pytest.raises(WireError):
            make_shard(attempts=[1])

    def test_non_object_refused(self):
        with pytest.raises(WireError):
            ShardSpec.decode("not a shard")

    def test_wrong_wire_version_refused(self):
        doc = make_shard().encode()
        doc["wire"] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version"):
            ShardSpec.decode(doc)

    @pytest.mark.parametrize(
        "missing", ["shard_id", "campaign", "functions", "digests", "seed"]
    )
    def test_missing_field_refused(self, missing):
        doc = make_shard().encode()
        del doc[missing]
        with pytest.raises(WireError, match="malformed"):
            ShardSpec.decode(doc)


class TestFingerprints:
    def test_local_fingerprints_verify(self):
        verify_fingerprints(fleet_fingerprints())
        make_shard().verify_local()

    def test_foreign_fingerprints_refused(self):
        skewed = dict(fleet_fingerprints(), schema=-1)
        with pytest.raises(FingerprintMismatch):
            verify_fingerprints(skewed)
        with pytest.raises(FingerprintMismatch):
            make_shard(fingerprints=skewed).verify_local()

    def test_mismatch_is_a_wire_error(self):
        assert issubclass(FingerprintMismatch, WireError)


class TestFunctionResult:
    def test_round_trip(self):
        result = FunctionResult(
            function="strcpy", digest="d", status="ok", attempt=2,
            elapsed=0.125, payload={"calls": 3}, worker="w1",
        )
        clone = FunctionResult.decode(
            json.loads(json.dumps(result.encode()))
        )
        assert clone == result
        assert clone.ok

    def test_failure_round_trip(self):
        result = FunctionResult(
            function="strcpy", digest="d", status="failed", attempt=3,
            elapsed=0.5, error="boom",
        )
        clone = FunctionResult.decode(result.encode())
        assert clone == result
        assert not clone.ok

    def test_malformed_refused(self):
        with pytest.raises(WireError):
            FunctionResult.decode({"wire": WIRE_VERSION})
        with pytest.raises(WireError):
            FunctionResult.decode([])


class TestBuildShards:
    def test_striping_matches_scheduler(self):
        names = [f"fn{i}" for i in range(5)]
        digests = {n: f"d-{n}" for n in names}
        shards = build_shards(
            names, digests, 2, campaign="c", seed=1, max_vectors=10
        )
        assert [list(s.functions) for s in shards] == [
            ["fn0", "fn2", "fn4"], ["fn1", "fn3"]
        ]
        assert [s.shard_id for s in shards] == ["c/0", "c/1"]
        for shard in shards:
            assert list(shard.digests) == [
                digests[n] for n in shard.functions
            ]
            shard.verify_local()
