"""Tests for the printf/scanf format engine and numeric helpers."""

import pytest

from repro.libc import BY_NAME, common, standard_runtime
from repro.memory import INVALID_POINTER, NULL
from repro.sandbox import Sandbox


@pytest.fixture()
def env():
    return standard_runtime(), Sandbox()


def call(env, name, *args):
    runtime, sandbox = env
    return sandbox.call(BY_NAME[name].model, args, runtime)


def cstr(env, text):
    return env[0].space.alloc_cstring(text).base


def written(env, path="/tmp/fmt.txt"):
    return bytes(env[0].kernel.lookup(path).data)


def out_fp(env, path="/tmp/fmt.txt"):
    return call(env, "fopen", cstr(env, path), cstr(env, "w")).return_value


class TestFormatDirectives:
    def test_decimal_and_unsigned(self, env):
        fp = out_fp(env)
        call(env, "fprintf", fp, cstr(env, "%d|%u"), -5, 5)
        assert written(env) == b"-5|5"

    def test_hex(self, env):
        fp = out_fp(env)
        call(env, "fprintf", fp, cstr(env, "%x"), 0xBEEF)
        assert written(env) == b"beef"

    def test_char(self, env):
        fp = out_fp(env)
        call(env, "fprintf", fp, cstr(env, "[%c]"), ord("Q"))
        assert written(env) == b"[Q]"

    def test_percent_escape(self, env):
        fp = out_fp(env)
        call(env, "fprintf", fp, cstr(env, "100%%"))
        assert written(env) == b"100%"

    def test_string_argument(self, env):
        fp = out_fp(env)
        call(env, "fprintf", fp, cstr(env, "<%s>"), cstr(env, "mid"))
        assert written(env) == b"<mid>"

    def test_unknown_directive_passed_through(self, env):
        fp = out_fp(env)
        call(env, "fprintf", fp, cstr(env, "%q!"))
        assert written(env) == b"%q!"

    def test_string_with_null_argument_crashes(self, env):
        fp = out_fp(env)
        assert call(env, "fprintf", fp, cstr(env, "%s"), NULL).crashed

    def test_missing_argument_reads_invalid_slot(self, env):
        fp = out_fp(env)
        out = call(env, "fprintf", fp, cstr(env, "%s %s"), cstr(env, "one"))
        assert out.crashed
        assert out.fault_address == INVALID_POINTER

    def test_trailing_percent_terminates(self, env):
        fp = out_fp(env)
        out = call(env, "fprintf", fp, cstr(env, "end%"))
        assert out.returned


class TestScanfEngine:
    def _input(self, env, content, fmt, *args):
        runtime, _ = env
        fp = out_fp(env, "/tmp/scan_in.txt")
        call(env, "fputs", cstr(env, content), fp)
        call(env, "fclose", fp)
        fp = call(env, "fopen", cstr(env, "/tmp/scan_in.txt"),
                  cstr(env, "r")).return_value
        return call(env, "fscanf", fp, cstr(env, fmt), *args)

    def test_multiple_conversions(self, env):
        runtime, _ = env
        a = runtime.space.map_region(8).base
        b = runtime.space.map_region(8).base
        out = self._input(env, "10 20", "%d %d", a, b)
        assert out.return_value == 2
        assert runtime.space.load_i32(a) == 10
        assert runtime.space.load_i32(b) == 20

    def test_mismatch_stops_early(self, env):
        runtime, _ = env
        a = runtime.space.map_region(8).base
        out = self._input(env, "notanumber", "%d", a)
        assert out.return_value == -1  # EOF-like: nothing converted

    def test_string_conversion_writes_through_pointer(self, env):
        runtime, _ = env
        word = runtime.space.map_region(16).base
        out = self._input(env, "token rest", "%s", word)
        assert out.return_value == 1
        assert runtime.space.read_cstring(word) == b"token"

    def test_scanf_into_bad_pointer_crashes(self, env):
        out = self._input(env, "42", "%d", INVALID_POINTER)
        assert out.crashed


class TestNumericHelpers:
    def test_to_int32_wraps(self):
        assert common.to_int32(2**31) == -(2**31)
        assert common.to_int32(-(2**31) - 1) == 2**31 - 1
        assert common.to_int32(5) == 5

    def test_to_int64_wraps(self):
        assert common.to_int64(2**63) == -(2**63)
        assert common.to_int64(-1) == -1

    def test_to_uint64(self):
        assert common.to_uint64(-1) == 2**64 - 1
        assert common.to_uint64(2**64 + 7) == 7
