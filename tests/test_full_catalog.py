"""Broad sweeps over the whole catalog: every function must survive
injection, produce a declaration, and yield valid wrapper C code."""

import pytest

from repro.declarations import declaration_from_report
from repro.injector import FaultInjector
from repro.libc.catalog import BALLISTA_SET, BY_NAME, CATALOG
from repro.wrapper import generate_wrapper_function, generate_wrapper_library

#: Catalog extras beyond the 86-function evaluation set.
EXTRAS = sorted(s.name for s in CATALOG if not s.ballista)


class TestCatalogConsistency:
    def test_86_evaluation_functions(self):
        assert len(BALLISTA_SET) == 86

    def test_all_prototypes_parse_and_match_names(self):
        from repro.cdecl import DeclarationParser, typedef_table

        parser = DeclarationParser(typedef_table())
        for spec in CATALOG:
            prototype = parser.parse_prototype(spec.prototype)
            assert prototype.name == spec.name
            assert prototype.ftype.variadic == spec.variadic, spec.name

    def test_models_are_callable_with_declared_arity(self):
        import inspect

        from repro.cdecl import DeclarationParser, typedef_table

        parser = DeclarationParser(typedef_table())
        for spec in CATALOG:
            arity = parser.parse_prototype(spec.prototype).ftype.arity
            signature = inspect.signature(spec.model)
            fixed = [
                p for p in signature.parameters.values()
                if p.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
            ]
            assert len(fixed) == arity + 1, spec.name  # +1 for ctx

    def test_names_are_unique(self):
        assert len(BY_NAME) == len(CATALOG)


@pytest.mark.parametrize("name", EXTRAS)
def test_extras_survive_injection_and_codegen(name):
    """The non-evaluated functions (unistd raw I/O, sprintf family,
    getenv, …) go through the full phase-1 + codegen path without
    errors and with plausible outputs."""
    report = FaultInjector(BY_NAME[name], max_vectors=400).run()
    declaration = declaration_from_report(report)
    assert declaration.name == name
    assert declaration.arity == report.prototype.ftype.arity
    code = generate_wrapper_function(declaration)
    assert code.count("{") == code.count("}")
    if declaration.unsafe:
        assert f"(*libc_{name})" in code


class TestFullLibrarySource:
    def test_whole_86_function_wrapper_compilation_unit(self, declarations86):
        source = generate_wrapper_library(declarations86)
        assert source.count("{") == source.count("}")
        assert source.count("(") == source.count(")")
        unsafe = [n for n, d in declarations86.items() if d.unsafe]
        for name in unsafe:
            assert f'dlsym(RTLD_NEXT, "{name}")' in source
        # Safe functions must not be wrapped.
        for name in ("abs", "srand", "tcflush"):
            assert f"(*libc_{name})" not in source

    def test_source_is_substantial(self, declarations86):
        source = generate_wrapper_library(declarations86)
        assert len(source.splitlines()) > 1000  # 77 wrappers + preamble
