"""Tests for the test case generators and generator selection."""

import pytest

from repro.cdecl import DeclarationParser, typedef_table
from repro.generators import (
    AdaptiveArrayTemplate,
    CStringGenerator,
    DirPointerGenerator,
    FdGenerator,
    FilePointerGenerator,
    FixedArrayGenerator,
    FuncPtrGenerator,
    GARBAGE_POINTER,
    IntGenerator,
    MAX_ARRAY_SIZE,
    RealGenerator,
    SizeGenerator,
    generators_for,
)
from repro.libc.runtime import standard_runtime
from repro.memory import AccessKind, Protection, SegmentationFault


@pytest.fixture()
def runtime():
    return standard_runtime()


class TestAdaptiveArray:
    def test_starts_at_zero_size(self, runtime):
        template = AdaptiveArrayTemplate(Protection.RW)
        case = template.materialize(runtime)
        assert case.fundamental.render() == "RW_FIXED[0]"

    def test_grows_incrementally_on_end_fault(self, runtime):
        template = AdaptiveArrayTemplate(Protection.RW)
        case = template.materialize(runtime)
        fault = SegmentationFault(case.value, AccessKind.READ, "past region end")
        assert template.adjust(fault, case)
        assert template.size == 4
        case = template.materialize(runtime)
        fault = SegmentationFault(case.value + 4, AccessKind.READ)
        assert template.adjust(fault, case)
        assert template.size == 8

    def test_doubles_after_additive_limit(self, runtime):
        from repro.generators.arrays import ADDITIVE_LIMIT

        template = AdaptiveArrayTemplate(Protection.RW, initial_size=ADDITIVE_LIMIT)
        case = template.materialize(runtime)
        fault = SegmentationFault(case.value + ADDITIVE_LIMIT, AccessKind.READ)
        assert template.adjust(fault, case)
        assert template.size == 2 * ADDITIVE_LIMIT

    def test_gives_up_at_max_size(self, runtime):
        template = AdaptiveArrayTemplate(Protection.RW, initial_size=MAX_ARRAY_SIZE)
        case = template.materialize(runtime)
        fault = SegmentationFault(case.value + MAX_ARRAY_SIZE, AccessKind.READ)
        assert not template.adjust(fault, case)
        assert template.gave_up

    def test_content_derived_fault_gives_up(self, runtime):
        template = AdaptiveArrayTemplate(Protection.RW, initial_size=16)
        case = template.materialize(runtime)
        fault = SegmentationFault(GARBAGE_POINTER, AccessKind.READ)
        assert not template.adjust(fault, case)
        assert template.gave_up

    def test_wrong_protection_jumps_to_max_then_gives_up(self, runtime):
        """The enlarge-until-out-of-memory arm: a write fault inside a
        read-only buffer records the failure at the maximum size."""
        template = AdaptiveArrayTemplate(Protection.READ, initial_size=12)
        case = template.materialize(runtime)
        fault = SegmentationFault(case.value + 8, AccessKind.WRITE, "protection")
        assert template.adjust(fault, case)
        assert template.size == MAX_ARRAY_SIZE
        case = template.materialize(runtime)
        fault = SegmentationFault(case.value + 8, AccessKind.WRITE, "protection")
        assert not template.adjust(fault, case)

    def test_ownership_covers_buffer_guard_and_garbage(self, runtime):
        template = AdaptiveArrayTemplate(Protection.RW, initial_size=8)
        case = template.materialize(runtime)
        assert case.owns(case.value)
        assert case.owns(case.value + 8)  # guard zone
        assert case.owns(GARBAGE_POINTER)
        assert not case.owns(0)

    def test_materialized_content_is_garbage_filled(self, runtime):
        template = AdaptiveArrayTemplate(Protection.READ, initial_size=8)
        case = template.materialize(runtime)
        assert runtime.space.load(case.value, 8) == b"\xa5" * 8


class TestGeneratorSequences:
    def test_fixed_array_generator_has_five_fundamental_kinds(self):
        names = set()
        for template in FixedArrayGenerator().templates():
            names.add(template.label.split("[")[0].split("=")[0])
        assert {"NULL", "INVALID", "RONLY_FIXED", "RW_FIXED", "WONLY_FIXED"} <= names

    def test_string_generator_covers_all_string_fundamentals(self, runtime):
        fundamentals = {
            t.materialize(runtime).fundamental.name
            for t in CStringGenerator().templates()
        }
        assert {"NULL", "INVALID", "STRING_RO", "STRING_RW", "VALID_MODE",
                "VALID_FORMAT"} <= fundamentals

    def test_string_templates_are_terminated(self, runtime):
        for template in CStringGenerator().templates():
            case = template.materialize(runtime)
            if case.fundamental.name.startswith(("STRING", "VALID")):
                runtime.space.read_cstring(case.value)  # must not fault

    def test_file_generator_materializes_open_streams(self, runtime):
        from repro.libc.fileio import OFF_FD

        for template in FilePointerGenerator().templates():
            case = template.materialize(runtime)
            if case.fundamental.name.endswith("_FILE") and not case.fundamental.name.startswith(("CORRUPT", "STALE")):
                fd = runtime.space.load_i32(case.value + OFF_FD)
                assert runtime.kernel.fd_mode(fd) is not None

    def test_corrupt_file_has_valid_fd_but_bad_buffer(self, runtime):
        from repro.generators.files_gen import CorruptFileTemplate, CORRUPT_POINTER
        from repro.libc.fileio import OFF_BUF, OFF_FD

        case = CorruptFileTemplate().materialize(runtime)
        fd = runtime.space.load_i32(case.value + OFF_FD)
        assert runtime.kernel.fd_mode(fd) is not None
        assert runtime.space.load_u64(case.value + OFF_BUF) == CORRUPT_POINTER
        assert case.owns(CORRUPT_POINTER)

    def test_dir_generator_variants(self, runtime):
        fundamentals = {
            t.materialize(runtime).fundamental.name
            for t in DirPointerGenerator().templates()
        }
        assert {"NULL", "INVALID", "OPEN_DIR", "CORRUPT_DIR", "STALE_DIR"} == fundamentals

    def test_int_generator_boundary_values(self, runtime):
        by_fundamental = {}
        for template in IntGenerator().templates():
            case = template.materialize(runtime)
            by_fundamental.setdefault(case.fundamental.name, []).append(case.value)
        assert all(-128 <= v <= -1 for v in by_fundamental["INT_SMALL_NEG"])
        assert all(1 <= v <= 255 for v in by_fundamental["INT_SMALL_POS"])
        assert all(v < -128 for v in by_fundamental["INT_BIG_NEG"])
        assert all(v > 255 for v in by_fundamental["INT_BIG_POS"])

    def test_fd_generator_opens_real_descriptors(self, runtime):
        for template in FdGenerator().templates():
            case = template.materialize(runtime)
            if case.fundamental.name in ("FD_RONLY", "FD_RW", "FD_WONLY"):
                assert runtime.kernel.fd_mode(case.value) is not None
            if case.fundamental.name == "FD_CLOSED":
                assert runtime.kernel.fd_mode(case.value) is None

    def test_funcptr_generator_registers_callable(self, runtime):
        for template in FuncPtrGenerator().templates():
            case = template.materialize(runtime)
            if case.fundamental.name == "VALID_FUNCPTR":
                assert case.value in runtime.funcptrs


class TestSelection:
    @pytest.fixture()
    def parser(self):
        return DeclarationParser(typedef_table())

    def _generators(self, parser, prototype, index):
        proto = parser.parse_prototype(prototype)
        param = proto.ftype.parameters[index]
        resolved = parser.resolve(param.ctype)
        return [type(g).__name__ for g in generators_for(param, resolved, param.ctype)]

    def test_char_pointer_gets_string_and_array(self, parser):
        names = self._generators(parser, "size_t strlen(const char *s);", 0)
        assert names == ["CStringGenerator", "FixedArrayGenerator"]

    def test_file_pointer_gets_specific_generator(self, parser):
        names = self._generators(parser, "int fclose(FILE *fp);", 0)
        assert names == ["FilePointerGenerator", "FixedArrayGenerator"]

    def test_dir_pointer(self, parser):
        names = self._generators(parser, "int closedir(DIR *d);", 0)
        assert names == ["DirPointerGenerator", "FixedArrayGenerator"]

    def test_struct_pointer_generic_array(self, parser):
        names = self._generators(parser, "char *asctime(const struct tm *tp);", 0)
        assert names == ["FixedArrayGenerator"]

    def test_fd_by_name_heuristic(self, parser):
        names = self._generators(parser, "int isatty(int fd);", 0)
        assert names == ["FdGenerator"]
        names = self._generators(parser, "int abs(int j);", 0)
        assert names == ["IntGenerator"]

    def test_size_t_gets_size_generator(self, parser):
        names = self._generators(parser, "void *malloc(size_t size);", 0)
        assert names == ["SizeGenerator"]

    def test_double_gets_real_generator(self, parser):
        names = self._generators(parser, "double difftime(time_t a, time_t b);", 0)
        assert names == ["IntGenerator"]  # time_t resolves to long
        proto = "double f(double x);"
        assert self._generators(parser, proto, 0) == ["RealGenerator"]

    def test_function_pointer(self, parser):
        proto = ("void qsort(void *b, size_t n, size_t s,"
                 " int (*cmp)(const void *, const void *));")
        assert self._generators(parser, proto, 3) == ["FuncPtrGenerator"]
