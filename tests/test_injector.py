"""Tests for the fault injector (sections 3.3, 3.4, 4.1)."""

import pytest

from repro.injector import FaultInjector, inject_function
from repro.libc.catalog import BY_NAME, CONSISTENT, INCONSISTENT, NONE_FOUND, VOID


@pytest.fixture(scope="module")
def asctime_report():
    return inject_function("asctime")


@pytest.fixture(scope="module")
def strcpy_report():
    return inject_function("strcpy")


class TestRobustTypeDiscovery:
    def test_asctime_discovers_r_array_null_44(self, asctime_report):
        """The paper's running example (Figure 2)."""
        assert asctime_report.robust_types[0].robust.render() == "R_ARRAY_NULL[44]"

    def test_asctime_is_unsafe(self, asctime_report):
        assert asctime_report.unsafe
        assert asctime_report.crashes > 0

    def test_asctime_consistent_errno(self, asctime_report):
        assert asctime_report.errno_class.kind == CONSISTENT
        assert asctime_report.errno_class.error_value == 0  # NULL

    def test_strcpy_source_is_cstring(self, strcpy_report):
        assert strcpy_report.robust_types[1].robust.name == "CSTRING"

    def test_strcpy_destination_is_writable(self, strcpy_report):
        assert strcpy_report.robust_types[0].robust.name == "W_ARRAY"

    def test_strcpy_no_errno(self, strcpy_report):
        assert strcpy_report.errno_class.kind == NONE_FOUND

    def test_adaptive_retries_happened(self, asctime_report):
        """Adaptive sizing requires call retries beyond the vector
        count."""
        assert asctime_report.retries > 0
        assert asctime_report.calls_made > asctime_report.vectors_run


class TestAttributeDiscovery:
    def test_safe_function_detected(self):
        report = inject_function("abs")
        assert report.safe
        assert report.crashes == 0

    def test_void_function_classified(self):
        report = inject_function("srand")
        assert report.errno_class.kind == VOID

    def test_inconsistent_errno_detected(self):
        report = inject_function("fdopen")
        assert report.errno_class.kind == INCONSISTENT

    def test_never_crashing_kernel_validated_function(self):
        report = inject_function("tcdrain")
        assert report.safe
        assert report.errno_class.kind == CONSISTENT
        assert report.errno_class.error_value == -1


class TestVectorEnumeration:
    def test_cross_product_used_when_small(self):
        injector = FaultInjector(BY_NAME["strcmp"])
        templates = [
            [t for g in gens for t in g.templates()] for gens in injector.generators
        ]
        vectors = injector._enumerate_vectors(templates)
        assert len(vectors) == len(templates[0]) * len(templates[1])

    def test_capped_enumeration_includes_sweeps(self):
        injector = FaultInjector(BY_NAME["fwrite"], max_vectors=300)
        templates = [
            [t for g in gens for t in g.templates()] for gens in injector.generators
        ]
        vectors = injector._enumerate_vectors(templates)
        assert len(vectors) <= 300
        # Every template of every argument appears at least once.
        for index, arg_templates in enumerate(templates):
            seen = {id(v[index]) for v in vectors}
            for template in arg_templates:
                assert id(template) in seen

    def test_zero_arg_function(self):
        injector = FaultInjector(BY_NAME["rand"])
        report = injector.run()
        assert report.vectors_run == 1
        assert report.safe


class TestInjectionMechanics:
    def test_injection_does_not_corrupt_base_runtime(self):
        from repro.libc.runtime import standard_runtime

        base = standard_runtime()
        injector = FaultInjector(BY_NAME["strcpy"], runtime_factory=lambda: base)
        injector.run()
        # The base runtime passed to the factory is forked per vector;
        # its own heap must stay pristine.
        assert base.heap.live_block_count == 0

    def test_observations_match_call_accounting(self, strcpy_report):
        assert len(strcpy_report.observations) == strcpy_report.calls_made

    def test_fault_attribution_blames_exactly_one_argument(self, strcpy_report):
        from repro.typelattice import TestResult

        for observation in strcpy_report.observations:
            if observation.result is TestResult.FAILURE:
                blamed = observation.blamed_argument
                assert blamed is None or 0 <= blamed < 2
