"""The specific section 6 findings the paper reports, rediscovered by
the injector from scratch."""

import pytest

from repro.injector import inject_function
from repro.libc.catalog import EXPECTED_NEVER_CRASH


class TestSection6Findings:
    def test_cfsetispeed_needs_only_write_access(self):
        report = inject_function("cfsetispeed")
        robust = report.robust_types[0].robust
        assert robust.name == "W_ARRAY"

    def test_cfsetospeed_needs_read_and_write_access(self):
        report = inject_function("cfsetospeed")
        robust = report.robust_types[0].robust
        assert robust.name == "RW_ARRAY"

    def test_fopen_crashes_on_invalid_mode_but_copes_with_bad_names(self):
        report = inject_function("fopen")
        path_type, mode_type = (rt.robust for rt in report.robust_types)
        # Any terminated string is an acceptable *path*...
        assert path_type.name == "CSTRING"
        # ...but only genuine modes are acceptable *modes*.
        assert mode_type.name == "MODE_STRING"

    def test_freopen_also_demands_valid_mode_after_manual_edit(self):
        from repro.declarations import apply_manual_edits, declaration_from_report

        report = inject_function("freopen")
        declaration = apply_manual_edits(declaration_from_report(report))
        assert declaration.arguments[1].robust_type.name == "MODE_STRING"
        assert declaration.arguments[0].robust_type.name == "CSTRING_NULL"

    def test_closedir_ideal_type_needs_stateful_tracking(self):
        """Section 5.2/6: the ideal type is OPEN_DIR, but no automated
        check exists, so the enforced type degrades to memory
        accessibility and closedir stays crash-prone until the manual
        assertions are added."""
        report = inject_function("closedir")
        robust = report.robust_types[0]
        assert robust.ideal.name == "OPEN_DIR"
        assert robust.robust.name in ("R_ARRAY", "W_ARRAY", "RW_ARRAY")
        assert not robust.crash_free

    def test_tcgetattr_discovers_full_termios_size(self):
        report = inject_function("tcgetattr")
        assert report.robust_types[1].robust.render() == "W_ARRAY[60]"

    def test_toupper_discovers_ctype_table_range(self):
        report = inject_function("toupper")
        assert report.robust_types[0].robust.name == "CHAR_RANGE"


class TestNeverCrashSet:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NEVER_CRASH))
    def test_function_never_crashes_under_injection(self, name):
        report = inject_function(name)
        assert report.safe, f"{name} crashed {report.crashes} times"
