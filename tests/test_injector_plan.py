"""The injector planning layer: compiled plans, snapshot ladders,
outcome memoization — and the golden equivalence guarantee.

The load-bearing property is at the bottom: for every function the
planned engine (shared plans + prepared snapshots + chain memo) must
produce an :class:`~repro.injector.InjectionReport` *equal* to the
naive engine's (fresh fork + full materialization per call), across
both enumeration regimes (full cross product and the capped
sweeps-plus-sample schedule).
"""

from __future__ import annotations

import random

from repro.generators.select import generators_for
from repro.injector import (
    FaultInjector,
    SnapshotLadder,
    clear_plan_cache,
    compile_plan,
    inject_function,
    plan_shape,
    shared_plan,
)
from repro.libc.catalog import BY_NAME
from repro.libc.runtime import LibcRuntime
from repro.obs import Telemetry


def _templates_for(name: str):
    """The injector's per-argument template matrix for a function."""
    injector = FaultInjector(BY_NAME[name])
    return [
        [t for g in gens for t in g.templates()] for gens in injector.generators
    ]


# ---------------------------------------------------------------- plans


class TestPlanCompilation:
    def test_uncapped_plan_is_full_cross_product(self):
        plan = compile_plan((("A", "B"), ("X", "Y", "Z")), max_vectors=10)
        assert not plan.capped
        assert plan.vectors == (
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2),
        )
        # reuse = shared prefix with the *next* vector: itertools
        # ordering varies the last slot fastest.
        assert plan.reuse == (1, 1, 0, 1, 1, 0)

    def test_capped_plan_sweeps_cover_every_template(self):
        shape = (tuple(f"a{i}" for i in range(8)), tuple(f"b{i}" for i in range(8)))
        plan = compile_plan(shape, max_vectors=20)
        assert plan.capped
        assert len(plan.vectors) <= 20
        # Every template index appears in some vector (the sweeps).
        for slot in (0, 1):
            covered = {vector[slot] for vector in plan.vectors}
            assert covered == set(range(8))
        # Stable index-space dedup: no vector appears twice.
        assert len(set(plan.vectors)) == len(plan.vectors)

    def test_empty_shape_runs_one_empty_vector(self):
        plan = compile_plan((), max_vectors=5)
        assert plan.vectors == ((),)
        assert plan.reuse == (0,)

    def test_digest_is_stable_and_content_sensitive(self):
        shape = (("NULL", "STRING_RW"), ("NULL", "STRING_RW"))
        assert (
            compile_plan(shape, 100).digest == compile_plan(shape, 100).digest
        )
        assert compile_plan(shape, 100).digest != compile_plan(shape, 99).digest
        other = (("NULL", "STRING_RO"), ("NULL", "STRING_RW"))
        assert compile_plan(shape, 100).digest != compile_plan(other, 100).digest

    def test_shared_plan_is_one_object_across_equal_shapes(self):
        clear_plan_cache()
        strcpy = _templates_for("strcpy")
        strcat = _templates_for("strcat")
        assert plan_shape(strcpy) == plan_shape(strcat)  # same prototype shape
        first = shared_plan(plan_shape(strcpy), 1200)
        second = shared_plan(plan_shape(strcat), 1200)
        assert first is second

    def test_enumeration_goes_through_index_space(self):
        """_enumerate_vectors binds a compiled plan: same templates in,
        identical object schedule out, with index-stable dedup."""
        injector = FaultInjector(BY_NAME["strcmp"])
        templates = _templates_for("strcmp")
        first = injector._enumerate_vectors(templates)
        second = injector._enumerate_vectors(templates)
        assert first == second
        product = len(templates[0]) * len(templates[1])
        assert len(first) == product


# ------------------------------------------------------------- ladder


class TestSnapshotLadder:
    def _snapshot(self, runtime: LibcRuntime):
        regions = tuple(
            (r.base, r.size, r.prot.value, r.freed, bytes(r.data))
            for r in runtime.space.regions()
        )
        return regions, runtime.strtok_state, runtime.errno

    def test_served_runtime_matches_fresh_materialization(self):
        injector = FaultInjector(BY_NAME["strcpy"])
        templates = _templates_for("strcpy")
        vectors = injector._enumerate_vectors(templates)[:40]
        base = injector.runtime_factory()
        ladder = SnapshotLadder(base)
        for index, vector in enumerate(vectors):
            extend = 1 if index + 1 < len(vectors) else 0
            served_runtime, served_cases = ladder.serve(vector, extend_to=extend)
            fresh_runtime = base.fork()
            fresh_cases = [t.materialize(fresh_runtime) for t in vector]
            assert [c.value for c in served_cases] == [c.value for c in fresh_cases]
            assert [c.fundamental for c in served_cases] == [
                c.fundamental for c in fresh_cases
            ]
            assert [c.owned_ranges for c in served_cases] == [
                c.owned_ranges for c in fresh_cases
            ]
            assert self._snapshot(served_runtime) == self._snapshot(fresh_runtime)
        assert ladder.hits > 0  # consecutive vectors shared prefixes

    def test_state_change_truncates_stale_rungs(self):
        injector = FaultInjector(BY_NAME["memcpy"])
        templates = _templates_for("memcpy")
        adaptive = next(
            t for t in templates[0] if t.state() is not None
        )
        vector = tuple(
            adaptive if slot == 0 else injector._benign_template(ts)
            for slot, ts in enumerate(templates)
        )
        base = injector.runtime_factory()
        ladder = SnapshotLadder(base)
        ladder.serve(vector, extend_to=len(vector))
        before = adaptive.state()
        adaptive.restore((before[0] + 4, before[1]))  # the growth step
        served_runtime, served_cases = ladder.serve(vector, extend_to=len(vector))
        fresh_runtime = base.fork()
        fresh_cases = [t.materialize(fresh_runtime) for t in vector]
        assert ladder.rebuilds == 1
        assert [c.value for c in served_cases] == [c.value for c in fresh_cases]
        assert self._snapshot(served_runtime) == self._snapshot(fresh_runtime)


# ------------------------------------------------- golden equivalence

#: Mixed regimes: duplicate NULL/INVALID chains (memo hits), adaptive
#: arrays (retry loops + state), FILE*/DIR* materialization (kernel
#: side effects), a funcptr consumer, and capped high-arity schedules.
GOLDEN_FUNCTIONS = (
    "strcpy",
    "strncmp",
    "strtok",
    "memcpy",
    "asctime",
    "fopen",
    "qsort",
    "fwrite",
)


class TestGoldenEquivalence:
    def test_planned_reports_equal_naive_reports(self):
        for name in GOLDEN_FUNCTIONS:
            naive = inject_function(name, plan=None)
            planned = inject_function(name, plan="shared")
            assert planned == naive, f"planned != naive for {name}"

    def test_capped_schedules_fuzz(self):
        """Seeded sweep over high-arity functions and random caps, so
        the sweeps+sample regime (and its dedup) is exercised at many
        boundary sizes."""
        rng = random.Random("injector-plan:capped-fuzz")
        for _ in range(6):
            name = rng.choice(["fwrite", "qsort", "fopen", "strtok"])
            max_vectors = rng.choice([17, 60, 150, 333])
            naive = inject_function(name, plan=None, max_vectors=max_vectors)
            planned = inject_function(name, plan="private", max_vectors=max_vectors)
            assert planned == naive, f"{name} max_vectors={max_vectors}"
            # The sweeps are never truncated (every template must run
            # at least once); only the sample honours the cap, so a
            # tiny cap may still be exceeded by the sweep floor.
            sweep_floor = sum(
                len(arg) for arg in _templates_for(name)
            )
            assert naive.vectors_run <= max(max_vectors, sweep_floor)

    def test_memo_and_ladder_engage_and_are_observable(self):
        """Duplicate NULL/INVALID chains must actually hit the memo,
        snapshots must actually serve, and both show up as attributes
        on the injector.function span."""
        telemetry = Telemetry()
        report = FaultInjector(
            BY_NAME["strcpy"], telemetry=telemetry, plan="shared"
        ).run()
        spans = [
            r
            for r in telemetry.tracer.records()
            if r["type"] == "span" and r["name"] == "injector.function"
        ]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["memo_hits"] > 0
        assert attrs["snapshot_hits"] > 0
        assert attrs["plan_digest"]
        # Memo hits still count as executed vectors in the report.
        assert report.vectors_run == attrs["vectors"]
        assert len(report.observations) >= report.vectors_run
