"""Unit tests for the simulated kernel."""

import pytest

from repro.libc.kernel import (
    APPEND,
    CREATE,
    Kernel,
    KernelError,
    READ,
    TRUNC,
    WRITE,
)
from repro.libc.errno_codes import EBADF, EINVAL, ENOENT, ENOTTY, EROFS


@pytest.fixture()
def kernel():
    k = Kernel()
    k.add_file("/data/file.txt", b"0123456789")
    k.add_file("/data/ro.txt", b"readonly", read_only=True)
    k.add_directory("/data/sub")
    return k


class TestFilesystem:
    def test_lookup_and_stat(self, kernel):
        node = kernel.lookup("/data/file.txt")
        assert node.data == bytearray(b"0123456789")
        stat = kernel.stat("/data/file.txt")
        assert stat.size == 10 and not stat.is_dir

    def test_missing_path(self, kernel):
        with pytest.raises(KernelError) as exc:
            kernel.lookup("/nope")
        assert exc.value.errno == ENOENT

    def test_list_directory_sorted(self, kernel):
        assert kernel.list_directory("/data") == ["file.txt", "ro.txt", "sub"]

    def test_unlink_and_rename(self, kernel):
        kernel.rename("/data/file.txt", "/data/renamed.txt")
        assert "renamed.txt" in kernel.list_directory("/data")
        kernel.unlink("/data/renamed.txt")
        with pytest.raises(KernelError):
            kernel.lookup("/data/renamed.txt")


class TestDescriptors:
    def test_open_read_write_seek(self, kernel):
        fd = kernel.open("/data/file.txt", READ)
        assert kernel.read(fd, 4) == b"0123"
        assert kernel.read(fd, 4) == b"4567"
        kernel.seek(fd, 0, 0)
        assert kernel.read(fd, 2) == b"01"
        kernel.close(fd)

    def test_write_extends_file(self, kernel):
        fd = kernel.open("/data/file.txt", WRITE)
        kernel.seek(fd, 0, 2)
        kernel.write(fd, b"ab")
        assert kernel.lookup("/data/file.txt").data == bytearray(b"0123456789ab")

    def test_create_and_truncate(self, kernel):
        fd = kernel.open("/data/new.txt", WRITE | CREATE | TRUNC)
        kernel.write(fd, b"xyz")
        fd2 = kernel.open("/data/new.txt", WRITE | CREATE | TRUNC)
        assert kernel.lookup("/data/new.txt").data == bytearray()
        kernel.close(fd)
        kernel.close(fd2)

    def test_append_mode(self, kernel):
        fd = kernel.open("/data/file.txt", WRITE | APPEND)
        kernel.write(fd, b"!")
        assert kernel.lookup("/data/file.txt").data.endswith(b"!")

    def test_read_only_filesystem_flag(self, kernel):
        with pytest.raises(KernelError) as exc:
            kernel.open("/data/ro.txt", WRITE)
        assert exc.value.errno == EROFS

    def test_bad_descriptor(self, kernel):
        with pytest.raises(KernelError) as exc:
            kernel.read(99, 1)
        assert exc.value.errno == EBADF
        assert kernel.fd_mode(99) is None

    def test_mode_enforcement(self, kernel):
        fd = kernel.open("/data/file.txt", READ)
        with pytest.raises(KernelError):
            kernel.write(fd, b"x")
        assert kernel.fd_mode(fd) == (True, False)

    def test_close_releases_fd(self, kernel):
        fd = kernel.open("/data/file.txt", READ)
        kernel.close(fd)
        with pytest.raises(KernelError):
            kernel.close(fd)

    def test_seek_validation(self, kernel):
        fd = kernel.open("/data/file.txt", READ)
        with pytest.raises(KernelError) as exc:
            kernel.seek(fd, 0, 9)
        assert exc.value.errno == EINVAL
        with pytest.raises(KernelError):
            kernel.seek(fd, -5, 0)


class TestTty:
    def test_std_streams_are_ttys(self, kernel):
        assert kernel.isatty(0) and kernel.isatty(1) and kernel.isatty(2)

    def test_termios_on_regular_file(self, kernel):
        fd = kernel.open("/data/file.txt", READ)
        with pytest.raises(KernelError) as exc:
            kernel.get_termios(fd)
        assert exc.value.errno == ENOTTY

    def test_tty_writes_are_discarded(self, kernel):
        assert kernel.write(1, b"console output") == 14


class TestEnvironmentAndFork:
    def test_env_round_trip(self, kernel):
        kernel.setenv(b"KEY", b"VALUE")
        assert kernel.getenv(b"KEY") == b"VALUE"
        assert kernel.getenv(b"MISSING") is None

    def test_fork_isolates_filesystem(self, kernel):
        clone = kernel.fork()
        clone.lookup("/data/file.txt").data[:] = b"mutated"
        assert kernel.lookup("/data/file.txt").data == bytearray(b"0123456789")

    def test_fork_preserves_descriptors_with_offsets(self, kernel):
        fd = kernel.open("/data/file.txt", READ)
        kernel.read(fd, 4)
        clone = kernel.fork()
        assert clone.read(fd, 2) == b"45"
        assert kernel.read(fd, 2) == b"45"  # independent offsets

    def test_fork_preserves_termios(self, kernel):
        kernel.get_termios(0).input_speed = 9
        clone = kernel.fork()
        assert clone.get_termios(0).input_speed == 9
        clone.get_termios(0).input_speed = 13
        assert kernel.get_termios(0).input_speed == 9


class TestLazyRuntimeKernelFork:
    """LibcRuntime defers the kernel deep-fork until first touch;
    the observable semantics must stay exactly fork-per-call."""

    def test_fork_shares_until_touched(self):
        from repro.libc.runtime import standard_runtime

        parent = standard_runtime()
        child = parent.fork()
        # Both sides share the frozen image until one of them reads.
        assert parent._kernel is child._kernel
        assert parent._kernel_shared and child._kernel_shared
        child.kernel  # first touch materializes a private copy
        assert not child._kernel_shared
        assert child._kernel is not parent._kernel

    def test_mutations_stay_private_both_directions(self):
        from repro.libc.runtime import standard_runtime

        parent = standard_runtime()
        child = parent.fork()
        child.kernel.add_file("/tmp/child.txt", b"child")
        parent.kernel.add_file("/tmp/parent.txt", b"parent")
        with pytest.raises(KernelError):
            parent.kernel.lookup("/tmp/child.txt")
        with pytest.raises(KernelError):
            child.kernel.lookup("/tmp/parent.txt")
        # Shared pre-fork content is visible to both.
        assert parent.kernel.lookup("/etc/passwd").data
        assert child.kernel.lookup("/etc/passwd").data

    def test_chained_forks_from_untouched_parent(self):
        from repro.libc.runtime import standard_runtime

        base = standard_runtime()
        first = base.fork()
        second = base.fork()  # base still shared from the first fork
        first.kernel.add_file("/tmp/a.txt", b"a")
        with pytest.raises(KernelError):
            second.kernel.lookup("/tmp/a.txt")
        with pytest.raises(KernelError):
            base.kernel.lookup("/tmp/a.txt")

    def test_call_context_does_not_materialize(self):
        from repro.libc.runtime import LibcRuntime
        from repro.sandbox.context import CallContext

        runtime = LibcRuntime().fork()
        CallContext(runtime)  # constructing a context is kernel-free
        assert runtime._kernel_shared
        assert CallContext(runtime).kernel is runtime.kernel
        assert not runtime._kernel_shared
