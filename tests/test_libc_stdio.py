"""Behavioural tests for the simulated stdio models."""

import pytest

from repro.libc import BY_NAME, standard_runtime
from repro.libc import fileio
from repro.libc.errno_codes import EBADF, EINVAL, ENOENT
from repro.memory import NULL, Protection
from repro.sandbox import CallStatus, Sandbox


@pytest.fixture()
def env():
    return standard_runtime(), Sandbox()


def call(env, name, *args):
    runtime, sandbox = env
    return sandbox.call(BY_NAME[name].model, args, runtime)


def cstr(env, text):
    return env[0].space.alloc_cstring(text).base


def open_file(env, path="/tmp/input.txt", mode="r"):
    out = call(env, "fopen", cstr(env, path), cstr(env, mode))
    assert out.returned and out.return_value != NULL, out.describe()
    return out.return_value


class TestFopen:
    def test_open_read_close(self, env):
        fp = open_file(env)
        assert call(env, "fclose", fp).return_value == 0

    def test_missing_file_sets_enoent(self, env):
        out = call(env, "fopen", cstr(env, "/missing"), cstr(env, "r"))
        assert out.return_value == NULL and out.errno == ENOENT

    def test_write_mode_creates_and_truncates(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/new.txt", "w")
        data = cstr(env, "content")
        call(env, "fputs", data, fp)
        call(env, "fclose", fp)
        assert runtime.kernel.lookup("/tmp/new.txt").data == bytearray(b"content")

    def test_invalid_mode_content_crashes(self, env):
        """Section 6 finding: fopen crashes when the mode string is
        invalid but copes with invalid file names."""
        out = call(env, "fopen", cstr(env, "/tmp/input.txt"), cstr(env, "zap"))
        assert out.crashed

    def test_mode_plus_adds_rw(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/input.txt", "r+")
        fd = runtime.space.load_i32(fp + fileio.OFF_FD)
        readable, writable = runtime.kernel.fd_mode(fd)
        assert readable and writable

    def test_append_mode_positions_at_end(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/input.txt", "a")
        call(env, "fputs", cstr(env, "!"), fp)
        assert runtime.kernel.lookup("/tmp/input.txt").data.endswith(b"!")


class TestReadWrite:
    def test_fgets_reads_one_line(self, env):
        runtime, _ = env
        fp = open_file(env)
        buffer = runtime.space.map_region(64).base
        out = call(env, "fgets", buffer, 64, fp)
        assert out.return_value == buffer
        assert runtime.space.read_cstring(buffer) == b"hello simulated world\n"

    def test_fgets_n1_writes_only_terminator(self, env):
        runtime, _ = env
        fp = open_file(env)
        buffer = runtime.space.map_region(4).base
        runtime.space.store(buffer, b"\xff\xff\xff\xff")
        out = call(env, "fgets", buffer, 1, fp)
        assert out.return_value == buffer
        assert runtime.space.load(buffer, 2) == b"\x00\xff"

    def test_fgets_nonpositive_n_einval(self, env):
        fp = open_file(env)
        out = call(env, "fgets", env[0].space.map_region(8).base, -3, fp)
        assert out.return_value == NULL and out.errno == EINVAL

    def test_fgets_eof_returns_null_without_errno(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/empty.txt", "w")
        call(env, "fclose", fp)
        fp = open_file(env, "/tmp/empty.txt", "r")
        out = call(env, "fgets", runtime.space.map_region(8).base, 8, fp)
        assert out.return_value == NULL and not out.errno_was_set

    def test_fread_fwrite_round_trip(self, env):
        runtime, _ = env
        src = open_file(env, "/tmp/data.bin")
        block = runtime.space.map_region(64).base
        got = call(env, "fread", block, 1, 64, src).return_value
        assert got == 64
        dst = open_file(env, "/tmp/copy.bin", "w")
        assert call(env, "fwrite", block, 1, 64, dst).return_value == 64

    def test_fread_partial_sets_eof_flag(self, env):
        runtime, _ = env
        fp = open_file(env)  # 32-byte file
        block = runtime.space.map_region(4096).base
        call(env, "fread", block, 1, 4096, fp)
        assert call(env, "feof", fp).return_value == 1

    def test_fgetc_fputc_ungetc(self, env):
        fp = open_file(env)
        first = call(env, "fgetc", fp).return_value
        assert first == ord("h")
        assert call(env, "ungetc", ord("X"), fp).return_value == ord("X")
        assert call(env, "fgetc", fp).return_value == ord("X")
        out = open_file(env, "/tmp/out.txt", "w")
        assert call(env, "fputc", ord("q"), out).return_value == ord("q")

    def test_ungetc_eof_rejected(self, env):
        fp = open_file(env)
        out = call(env, "ungetc", -1, fp)
        assert out.return_value == -1 and out.errno == EINVAL


class TestSeek:
    def test_fseek_ftell_rewind(self, env):
        fp = open_file(env)
        assert call(env, "fseek", fp, 6, 0).return_value == 0
        assert call(env, "ftell", fp).return_value == 6
        call(env, "rewind", fp)
        assert call(env, "ftell", fp).return_value == 0

    def test_fseek_invalid_whence(self, env):
        fp = open_file(env)
        out = call(env, "fseek", fp, 0, 99)
        assert out.return_value == -1 and out.errno == EINVAL

    def test_fseek_end_relative(self, env):
        fp = open_file(env)
        call(env, "fseek", fp, -1, 2)
        assert call(env, "fgetc", fp).return_value == ord("\n")


class TestCorruptionBehaviour:
    def test_garbage_file_crashes_on_buffer_deref(self, env):
        runtime, _ = env
        garbage = runtime.space.map_region(216)
        garbage.poke(garbage.base, b"\xa5" * 216)
        assert call(env, "fgetc", garbage.base).crashed

    def test_stale_descriptor_fails_gracefully(self, env):
        runtime, sandbox = env
        from repro.sandbox.context import CallContext

        fp = fileio.alloc_file(CallContext(runtime), 222, True, True)
        out = call(env, "fgetc", fp)
        assert out.returned and out.errno == EBADF

    def test_corrupt_buffer_pointer_crashes_despite_valid_fd(self, env):
        """The remaining-failure class of section 6: corrupted data
        structures in accessible memory."""
        runtime, _ = env
        fp = open_file(env)
        runtime.space.store_u64(fp + fileio.OFF_BUF, 0xBAD0BAD00000)
        assert call(env, "fgetc", fp).crashed

    def test_fclose_garbage_crashes_in_free(self, env):
        runtime, _ = env
        garbage = runtime.space.map_region(216)
        garbage.poke(garbage.base, b"\xa5" * 216)
        assert call(env, "fclose", garbage.base).crashed


class TestFlushAndFlags:
    def test_fflush_null_flushes_all(self, env):
        out = call(env, "fflush", NULL)
        assert out.return_value == 0

    def test_fflush_bad_fd_returns_eof_without_errno(self, env):
        """The paper's fflush quirk: "supposed to set errno" but does
        not — landing it in the no-error-code-found class."""
        runtime, _ = env
        from repro.sandbox.context import CallContext

        fp = fileio.alloc_file(CallContext(runtime), 222, True, True)
        out = call(env, "fflush", fp)
        assert out.return_value == -1 and not out.errno_was_set

    def test_feof_ferror_clearerr(self, env):
        fp = open_file(env)
        assert call(env, "feof", fp).return_value == 0
        assert call(env, "ferror", fp).return_value == 0
        call(env, "clearerr", fp)

    def test_fileno_validates_descriptor(self, env):
        runtime, _ = env
        fp = open_file(env)
        fd = call(env, "fileno", fp).return_value
        assert runtime.kernel.fd_mode(fd) is not None
        from repro.sandbox.context import CallContext

        stale = fileio.alloc_file(CallContext(runtime), 222, True, True)
        out = call(env, "fileno", stale)
        assert out.return_value == -1 and out.errno == EBADF

    def test_setvbuf_invalid_mode(self, env):
        fp = open_file(env)
        out = call(env, "setvbuf", fp, NULL, 7, 0)
        assert out.return_value == -1 and out.errno == EINVAL


class TestInconsistentErrno:
    def test_fdopen_tty_sets_errno_but_returns_stream(self, env):
        out = call(env, "fdopen", 0, cstr(env, "r"))
        assert out.return_value != NULL and out.errno_was_set

    def test_fdopen_bad_fd(self, env):
        out = call(env, "fdopen", 444, cstr(env, "r"))
        assert out.return_value == NULL and out.errno == EBADF

    def test_freopen_null_path_changes_mode_sets_errno(self, env):
        fp = open_file(env)
        out = call(env, "freopen", NULL, cstr(env, "w"), fp)
        assert out.return_value == fp and out.errno == EINVAL

    def test_freopen_switches_file(self, env):
        runtime, _ = env
        fp = open_file(env)
        out = call(env, "freopen", cstr(env, "/tmp/data.bin"), cstr(env, "r"), fp)
        assert out.return_value == fp
        assert call(env, "fgetc", fp).return_value == 0


class TestFormattedIO:
    def test_fprintf_directives(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/fmt.txt", "w")
        fmt = cstr(env, "n=%d s=%s %%")
        word = cstr(env, "word")
        out = call(env, "fprintf", fp, fmt, 42, word)
        assert out.return_value == len("n=42 s=word %")
        call(env, "fclose", fp)
        assert runtime.kernel.lookup("/tmp/fmt.txt").data == bytearray(b"n=42 s=word %")

    def test_fprintf_missing_argument_crashes(self, env):
        """Varargs walk off the register save area: the %n/%s attack
        surface the FORMAT_STRING check exists for."""
        fp = open_file(env, "/tmp/fmt2.txt", "w")
        assert call(env, "fprintf", fp, cstr(env, "%s")).crashed

    def test_fprintf_percent_n_writes_memory(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/fmt3.txt", "w")
        target = runtime.space.map_region(8).base
        call(env, "fprintf", fp, cstr(env, "abcd%n"), target)
        assert runtime.space.load_i32(target) == 4

    def test_fscanf_parses_ints_and_strings(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/scan.txt", "w")
        call(env, "fputs", cstr(env, "42 hello"), fp)
        call(env, "fclose", fp)
        fp = open_file(env, "/tmp/scan.txt")
        number = runtime.space.map_region(8).base
        word = runtime.space.map_region(32).base
        out = call(env, "fscanf", fp, cstr(env, "%d %s"), number, word)
        assert out.return_value == 2
        assert runtime.space.load_i32(number) == 42
        assert runtime.space.read_cstring(word) == b"hello"


class TestTmpAndFiles:
    def test_tmpnam_with_buffer_and_static(self, env):
        runtime, _ = env
        buffer = runtime.space.map_region(20).base
        out = call(env, "tmpnam", buffer)
        assert out.return_value == buffer
        name = runtime.space.read_cstring(buffer)
        assert name.startswith(b"/tmp/tmp")
        static = call(env, "tmpnam", NULL)
        assert static.return_value == runtime.tmpnam_buffer

    def test_remove_and_rename(self, env):
        runtime, _ = env
        fp = open_file(env, "/tmp/victim.txt", "w")
        call(env, "fclose", fp)
        out = call(env, "rename", cstr(env, "/tmp/victim.txt"), cstr(env, "/tmp/renamed.txt"))
        assert out.return_value == 0
        assert call(env, "remove", cstr(env, "/tmp/renamed.txt")).return_value == 0
        out = call(env, "remove", cstr(env, "/tmp/renamed.txt"))
        assert out.return_value == -1 and out.errno == ENOENT

    def test_puts_writes_to_stdout(self, env):
        assert call(env, "puts", cstr(env, "hello")).return_value == 6

    def test_tmpfile_returns_stream(self, env):
        out = call(env, "tmpfile")
        assert out.return_value != NULL
        assert call(env, "fputc", ord("x"), out.return_value).returned
