"""Behavioural tests for stdlib.h, ctype.h and the misc functions."""

import pytest

from repro.libc import BY_NAME, standard_runtime
from repro.libc.common import LONG_MAX, ULONG_MAX
from repro.libc.errno_codes import EBADF, EINVAL, ENOMEM, ERANGE
from repro.memory import NULL, Protection
from repro.sandbox import Sandbox


@pytest.fixture()
def env():
    return standard_runtime(), Sandbox()


def call(env, name, *args):
    runtime, sandbox = env
    return sandbox.call(BY_NAME[name].model, args, runtime)


def cstr(env, text, prot=Protection.READ):
    region = env[0].space.alloc_cstring(text)
    region.prot = prot
    return region.base


class TestConversions:
    def test_atoi_basics(self, env):
        assert call(env, "atoi", cstr(env, "42")).return_value == 42
        assert call(env, "atoi", cstr(env, "  -17xyz")).return_value == -17
        assert call(env, "atoi", cstr(env, "junk")).return_value == 0

    def test_atoi_null_crashes(self, env):
        assert call(env, "atoi", NULL).crashed

    def test_strtol_with_endptr(self, env):
        runtime, _ = env
        text = cstr(env, "123rest")
        endptr = runtime.space.map_region(8).base
        out = call(env, "strtol", text, endptr, 10)
        assert out.return_value == 123
        assert runtime.space.load_u64(endptr) == text + 3

    def test_strtol_bases(self, env):
        assert call(env, "strtol", cstr(env, "ff"), NULL, 16).return_value == 255
        assert call(env, "strtol", cstr(env, "0x10"), NULL, 0).return_value == 16
        assert call(env, "strtol", cstr(env, "010"), NULL, 0).return_value == 8
        assert call(env, "strtol", cstr(env, "101"), NULL, 2).return_value == 5

    def test_strtol_overflow_erange(self, env):
        out = call(env, "strtol", cstr(env, "9" * 40), NULL, 10)
        assert out.return_value == LONG_MAX and out.errno == ERANGE

    def test_strtol_bad_base_silent_zero(self, env):
        out = call(env, "strtol", cstr(env, "55"), NULL, 1)
        assert out.return_value == 0 and not out.errno_was_set

    def test_strtol_no_digits_endptr_is_nptr(self, env):
        runtime, _ = env
        text = cstr(env, "zzz")
        endptr = runtime.space.map_region(8).base
        call(env, "strtol", text, endptr, 10)
        assert runtime.space.load_u64(endptr) == text

    def test_strtol_readonly_endptr_crashes(self, env):
        runtime, _ = env
        endptr = runtime.space.map_region(8, Protection.READ).base
        assert call(env, "strtol", cstr(env, "5"), endptr, 10).crashed

    def test_strtoul_wraps_negative(self, env):
        out = call(env, "strtoul", cstr(env, "-1"), NULL, 10)
        assert out.return_value == ULONG_MAX

    def test_strtod_and_atof(self, env):
        assert call(env, "strtod", cstr(env, "2.5e2"), NULL).return_value == 250.0
        assert call(env, "atof", cstr(env, "-0.5")).return_value == -0.5


class TestAllocation:
    def test_malloc_free_cycle(self, env):
        runtime, _ = env
        pointer = call(env, "malloc", 64).return_value
        runtime.space.store(pointer, b"x" * 64)
        assert call(env, "free", pointer).returned

    def test_malloc_absurd_size_enomem(self, env):
        out = call(env, "malloc", 2**40)
        assert out.return_value == NULL and out.errno == ENOMEM

    def test_free_garbage_crashes(self, env):
        runtime, _ = env
        region = runtime.space.map_region(16)
        assert call(env, "free", region.base).crashed

    def test_realloc_preserves_and_enomem(self, env):
        runtime, _ = env
        pointer = call(env, "malloc", 8).return_value
        runtime.space.store(pointer, b"abcdefgh")
        bigger = call(env, "realloc", pointer, 64).return_value
        assert runtime.space.load(bigger, 8) == b"abcdefgh"
        out = call(env, "realloc", bigger, 2**40)
        assert out.return_value == NULL and out.errno == ENOMEM

    def test_calloc_zeroes(self, env):
        runtime, _ = env
        pointer = call(env, "calloc", 4, 4).return_value
        assert runtime.space.load(pointer, 16) == bytes(16)


class TestEnvironment:
    def test_getenv_returns_memory_pointer(self, env):
        runtime, _ = env
        out = call(env, "getenv", cstr(env, "HOME"))
        assert runtime.space.read_cstring(out.return_value) == b"/home/user"

    def test_getenv_missing(self, env):
        assert call(env, "getenv", cstr(env, "NOPE")).return_value == NULL

    def test_setenv_and_overwrite_flag(self, env):
        runtime, _ = env
        assert call(env, "setenv", cstr(env, "NEW"), cstr(env, "1"), 0).return_value == 0
        call(env, "setenv", cstr(env, "NEW"), cstr(env, "2"), 0)
        assert runtime.kernel.getenv(b"NEW") == b"1"
        call(env, "setenv", cstr(env, "NEW"), cstr(env, "2"), 1)
        assert runtime.kernel.getenv(b"NEW") == b"2"

    def test_setenv_invalid_name(self, env):
        out = call(env, "setenv", cstr(env, "A=B"), cstr(env, "x"), 1)
        assert out.return_value == -1 and out.errno == EINVAL

    def test_putenv_parses_assignment(self, env):
        runtime, _ = env
        assert call(env, "putenv", cstr(env, "PE=yes", Protection.RW)).return_value == 0
        assert runtime.kernel.getenv(b"PE") == b"yes"
        out = call(env, "putenv", cstr(env, "NOEQUALS", Protection.RW))
        assert out.return_value == -1 and out.errno == EINVAL


class TestSortSearch:
    def _int_array(self, env, values):
        runtime, _ = env
        region = runtime.space.map_region(4 * len(values))
        for index, value in enumerate(values):
            runtime.space.store_i32(region.base + 4 * index, value)
        return region.base

    def _comparator(self, env):
        def compare(ctx, a, b):
            left, right = ctx.mem.load_i32(a), ctx.mem.load_i32(b)
            return (left > right) - (left < right)

        return env[0].register_funcptr(compare)

    def test_qsort_sorts(self, env):
        runtime, _ = env
        base = self._int_array(env, [5, 1, 4, 2, 3])
        assert call(env, "qsort", base, 5, 4, self._comparator(env)).returned
        assert [runtime.space.load_i32(base + 4 * i) for i in range(5)] == [1, 2, 3, 4, 5]

    def test_qsort_bad_comparator_crashes(self, env):
        base = self._int_array(env, [2, 1])
        data_pointer = env[0].space.map_region(16).base
        assert call(env, "qsort", base, 2, 4, data_pointer).crashed
        assert call(env, "qsort", base, 2, 4, NULL).crashed

    def test_qsort_empty_is_noop(self, env):
        assert call(env, "qsort", NULL, 0, 4, NULL).returned

    def test_bsearch_finds(self, env):
        runtime, _ = env
        base = self._int_array(env, [10, 20, 30, 40])
        key = runtime.space.map_region(4).base
        runtime.space.store_i32(key, 30)
        out = call(env, "bsearch", key, base, 4, 4, self._comparator(env))
        assert out.return_value == base + 8
        runtime.space.store_i32(key, 35)
        assert call(env, "bsearch", key, base, 4, 4, self._comparator(env)).return_value == NULL


class TestCtype:
    def test_classifications(self, env):
        assert call(env, "isalpha", ord("a")).return_value == 1
        assert call(env, "isalpha", ord("5")).return_value == 0
        assert call(env, "isdigit", ord("5")).return_value == 1
        assert call(env, "isspace", ord("\t")).return_value == 1

    def test_case_conversion(self, env):
        assert call(env, "toupper", ord("q")).return_value == ord("Q")
        assert call(env, "toupper", ord("Q")).return_value == ord("Q")
        assert call(env, "tolower", ord("Q")).return_value == ord("q")

    def test_eof_is_safe(self, env):
        assert call(env, "isalpha", -1).return_value == 0

    def test_table_range_boundaries(self, env):
        assert call(env, "isalpha", -128).returned
        assert call(env, "isalpha", 255).returned
        assert call(env, "isalpha", -129).crashed
        assert call(env, "isalpha", 256).crashed

    def test_far_out_of_range_crashes(self, env):
        assert call(env, "toupper", 2**20).crashed
        assert call(env, "tolower", -(2**20)).crashed


class TestMiscNeverCrash:
    def test_abs_labs(self, env):
        assert call(env, "abs", -5).return_value == 5
        assert call(env, "abs", 2**31 - 1).return_value == 2**31 - 1
        assert call(env, "labs", -(2**40)).return_value == 2**40

    def test_rand_deterministic_with_srand(self, env):
        call(env, "srand", 7)
        first = call(env, "rand").return_value
        call(env, "srand", 7)
        assert call(env, "rand").return_value == first

    def test_isatty(self, env):
        assert call(env, "isatty", 0).return_value == 1
        out = call(env, "isatty", 444)
        assert out.return_value == 0 and out.errno == EBADF

    def test_umask_returns_previous(self, env):
        previous = call(env, "umask", 0o077).return_value
        assert previous == 0o022
        assert call(env, "umask", 0o022).return_value == 0o077

    def test_umask_invalid_bits(self, env):
        out = call(env, "umask", 0o777777)
        assert out.errno == EINVAL

    def test_getpid_clock(self, env):
        assert call(env, "getpid").return_value == 4711
        assert call(env, "clock").returned
