"""Behavioural tests for the simulated string.h models."""

import pytest

from repro.libc import BY_NAME, standard_runtime
from repro.memory import NULL, Protection
from repro.sandbox import CallStatus, Sandbox


@pytest.fixture()
def env():
    return standard_runtime(), Sandbox()


def call(env, name, *args):
    runtime, sandbox = env
    return sandbox.call(BY_NAME[name].model, args, runtime)


def cstr(env, text, prot=Protection.RW):
    runtime, _ = env
    region = runtime.space.alloc_cstring(text)
    region.prot = prot
    return region.base


def buf(env, size, prot=Protection.RW):
    runtime, _ = env
    region = runtime.space.map_region(size)
    region.prot = prot
    return region.base


class TestCopyFunctions:
    def test_strcpy_copies_and_returns_dst(self, env):
        runtime, _ = env
        dst = buf(env, 16)
        out = call(env, "strcpy", dst, cstr(env, "hi"))
        assert out.return_value == dst
        assert runtime.space.read_cstring(dst) == b"hi"

    def test_strcpy_overflow_faults_at_exact_byte(self, env):
        dst = buf(env, 3)
        out = call(env, "strcpy", dst, cstr(env, "hello"))
        assert out.crashed
        assert out.fault_address == dst + 3

    def test_strcpy_read_only_destination(self, env):
        dst = cstr(env, "xxxxx", Protection.READ)
        assert call(env, "strcpy", dst, cstr(env, "hi")).crashed

    def test_strncpy_pads_with_nul(self, env):
        runtime, _ = env
        dst = buf(env, 8)
        runtime.space.store(dst, b"\xff" * 8)
        call(env, "strncpy", dst, cstr(env, "ab"), 6)
        assert runtime.space.load(dst, 8) == b"ab\x00\x00\x00\x00\xff\xff"

    def test_strncpy_exactly_n_no_terminator(self, env):
        runtime, _ = env
        dst = buf(env, 4)
        call(env, "strncpy", dst, cstr(env, "abcdef"), 4)
        assert runtime.space.load(dst, 4) == b"abcd"

    def test_strcat_appends(self, env):
        runtime, _ = env
        dst = buf(env, 16)
        runtime.space.write_cstring(dst, b"foo")
        call(env, "strcat", dst, cstr(env, "bar"))
        assert runtime.space.read_cstring(dst) == b"foobar"

    def test_strncat_always_terminates(self, env):
        runtime, _ = env
        dst = buf(env, 16)
        runtime.space.write_cstring(dst, b"xy")
        call(env, "strncat", dst, cstr(env, "abcdef"), 3)
        assert runtime.space.read_cstring(dst) == b"xyabc"

    def test_strdup_allocates_copy(self, env):
        runtime, _ = env
        out = call(env, "strdup", cstr(env, "dup me"))
        assert runtime.space.read_cstring(out.return_value) == b"dup me"
        assert runtime.heap.block_containing(out.return_value) is not None


class TestScanFunctions:
    def test_strlen(self, env):
        assert call(env, "strlen", cstr(env, "four")).return_value == 4
        assert call(env, "strlen", cstr(env, "")).return_value == 0

    def test_strlen_null_crashes(self, env):
        assert call(env, "strlen", NULL).crashed

    def test_strlen_unterminated_crashes_at_end(self, env):
        runtime, _ = env
        region = runtime.space.alloc_bytes(b"\xa5" * 6)
        out = call(env, "strlen", region.base)
        assert out.crashed and out.fault_address == region.end

    def test_strcmp_orderings(self, env):
        a, b = cstr(env, "abc"), cstr(env, "abd")
        assert call(env, "strcmp", a, b).return_value == -1
        assert call(env, "strcmp", b, a).return_value == 1
        assert call(env, "strcmp", a, cstr(env, "abc")).return_value == 0

    def test_strncmp_bounded(self, env):
        assert call(env, "strncmp", cstr(env, "abcX"), cstr(env, "abcY"), 3).return_value == 0
        assert call(env, "strncmp", cstr(env, "abcX"), cstr(env, "abcY"), 4).return_value == -1

    def test_strchr_found_and_missing(self, env):
        s = cstr(env, "hello")
        assert call(env, "strchr", s, ord("l")).return_value == s + 2
        assert call(env, "strchr", s, ord("z")).return_value == NULL
        assert call(env, "strchr", s, 0).return_value == s + 5

    def test_strrchr_finds_last(self, env):
        s = cstr(env, "hello")
        assert call(env, "strrchr", s, ord("l")).return_value == s + 3

    def test_strstr(self, env):
        haystack = cstr(env, "needle in haystack")
        assert call(env, "strstr", haystack, cstr(env, "in")).return_value == haystack + 7
        assert call(env, "strstr", haystack, cstr(env, "xyz")).return_value == NULL
        assert call(env, "strstr", haystack, cstr(env, "")).return_value == haystack

    def test_strspn_strcspn(self, env):
        s = cstr(env, "aabbcc")
        assert call(env, "strspn", s, cstr(env, "ab")).return_value == 4
        assert call(env, "strcspn", s, cstr(env, "c")).return_value == 4

    def test_strpbrk(self, env):
        s = cstr(env, "hello world")
        assert call(env, "strpbrk", s, cstr(env, "ow")).return_value == s + 4
        assert call(env, "strpbrk", s, cstr(env, "xyz")).return_value == NULL


class TestStrtok:
    def test_tokenizes_with_state(self, env):
        runtime, _ = env
        s = cstr(env, "a,b;c")
        delim = cstr(env, ",;")
        first = call(env, "strtok", s, delim)
        assert runtime.space.read_cstring(first.return_value) == b"a"
        second = call(env, "strtok", NULL, delim)
        assert runtime.space.read_cstring(second.return_value) == b"b"
        third = call(env, "strtok", NULL, delim)
        assert runtime.space.read_cstring(third.return_value) == b"c"
        assert call(env, "strtok", NULL, delim).return_value == NULL

    def test_strtok_null_without_state_crashes(self, env):
        out = call(env, "strtok", NULL, cstr(env, ","))
        assert out.crashed and out.fault_address == 0

    def test_strtok_skips_leading_delimiters(self, env):
        runtime, _ = env
        out = call(env, "strtok", cstr(env, ",,x"), cstr(env, ","))
        assert runtime.space.read_cstring(out.return_value) == b"x"


class TestMemFunctions:
    def test_memcpy_and_memcmp(self, env):
        runtime, _ = env
        src = runtime.space.alloc_bytes(b"12345678").base
        dst = buf(env, 8)
        call(env, "memcpy", dst, src, 8)
        assert call(env, "memcmp", dst, src, 8).return_value == 0

    def test_memcpy_zero_touches_nothing(self, env):
        assert call(env, "memcpy", NULL, NULL, 0).returned

    def test_memmove_overlap(self, env):
        runtime, _ = env
        region = runtime.space.alloc_bytes(b"abcdef__")
        call(env, "memmove", region.base + 2, region.base, 6)
        assert runtime.space.load(region.base, 8) == b"ababcdef"

    def test_memset_fills(self, env):
        runtime, _ = env
        dst = buf(env, 8)
        call(env, "memset", dst, 0x7A, 8)
        assert runtime.space.load(dst, 8) == b"z" * 8

    def test_memset_huge_crashes_at_region_end(self, env):
        dst = buf(env, 8)
        out = call(env, "memset", dst, 0, 2**20)
        assert out.crashed and out.fault_address == dst + 8

    def test_memchr(self, env):
        runtime, _ = env
        region = runtime.space.alloc_bytes(b"ab\x00cd")
        assert call(env, "memchr", region.base, ord("d"), 5).return_value == region.base + 4
        assert call(env, "memchr", region.base, ord("z"), 5).return_value == NULL

    def test_memcmp_difference_sign(self, env):
        runtime, _ = env
        a = runtime.space.alloc_bytes(b"aaa").base
        b = runtime.space.alloc_bytes(b"aab").base
        assert call(env, "memcmp", a, b, 3).return_value == -1


class TestErrnoDiscipline:
    def test_string_functions_never_set_errno(self, env):
        """Table 1: the string library populates the
        no-error-code-found class."""
        cases = [
            ("strcpy", (buf(env, 8), cstr(env, "x"))),
            ("strlen", (cstr(env, "x"),)),
            ("strcmp", (cstr(env, "a"), cstr(env, "b"))),
            ("memcpy", (buf(env, 4), cstr(env, "ab"), 2)),
            ("strstr", (cstr(env, "ab"), cstr(env, "b"))),
        ]
        for name, args in cases:
            out = call(env, name, *args)
            assert out.returned and not out.errno_was_set, name
