"""Behavioural tests for the time.h, dirent.h and termios.h models."""

import pytest

from repro.libc import BY_NAME, standard_runtime
from repro.libc import dirent_fns, timefns
from repro.libc.errno_codes import EBADF, EINVAL, ENOENT, ENOTDIR, ENOTTY, EOVERFLOW
from repro.memory import NULL, Protection
from repro.sandbox import Sandbox


@pytest.fixture()
def env():
    return standard_runtime(), Sandbox()


def call(env, name, *args):
    runtime, sandbox = env
    return sandbox.call(BY_NAME[name].model, args, runtime)


def cstr(env, text):
    return env[0].space.alloc_cstring(text).base


def make_tm(env, **fields):
    runtime, _ = env
    region = runtime.space.map_region(44)
    defaults = dict(sec=30, minute=15, hour=12, mday=4, mon=6, year=102,
                    wday=4, yday=184, isdst=0)
    defaults.update(fields)
    values = [defaults["sec"], defaults["minute"], defaults["hour"],
              defaults["mday"], defaults["mon"], defaults["year"],
              defaults["wday"], defaults["yday"], defaults["isdst"]]
    for index, value in enumerate(values):
        runtime.space.store_i32(region.base + 4 * index, value)
    runtime.space.store_i64(region.base + 36, 0)
    return region.base


class TestAsctime:
    def test_formats_valid_tm(self, env):
        runtime, _ = env
        out = call(env, "asctime", make_tm(env))
        text = runtime.space.read_cstring(out.return_value)
        assert text == b"Thu Jul  4 12:15:30 2002\n"
        assert out.return_value == runtime.asctime_buffer

    def test_null_returns_einval(self, env):
        out = call(env, "asctime", NULL)
        assert out.return_value == NULL and out.errno == EINVAL

    def test_reads_exactly_44_bytes(self, env):
        runtime, _ = env
        exact = runtime.space.map_region(44)
        assert call(env, "asctime", exact.base).returned
        short = runtime.space.map_region(43)
        out = call(env, "asctime", short.base)
        assert out.crashed and out.fault_address == short.base + 43

    def test_tolerates_garbage_content(self, env):
        runtime, _ = env
        garbage = runtime.space.alloc_bytes(b"\xa5" * 44)
        assert call(env, "asctime", garbage.base).returned


class TestTimeConversions:
    def test_gmtime_round_trip(self, env):
        runtime, _ = env
        timep = runtime.space.map_region(8).base
        runtime.space.store_i64(timep, 1_025_784_930)  # 2002-07-04 12:15:30
        out = call(env, "gmtime", timep)
        tm = out.return_value
        assert runtime.space.load_i32(tm + 16) == 6  # July
        assert runtime.space.load_i32(tm + 20) == 102  # 2002

    def test_gmtime_overflow(self, env):
        runtime, _ = env
        timep = runtime.space.map_region(8).base
        runtime.space.store_i64(timep, 2**40)
        out = call(env, "gmtime", timep)
        assert out.return_value == NULL and out.errno == EOVERFLOW

    def test_ctime_null_crashes(self, env):
        assert call(env, "ctime", NULL).crashed

    def test_mktime_normalizes_in_place(self, env):
        runtime, _ = env
        tm = make_tm(env, sec=90)  # overflows into minutes
        out = call(env, "mktime", tm)
        assert out.returned and out.return_value > 0
        assert runtime.space.load_i32(tm) < 60  # seconds normalized

    def test_mktime_needs_write_access(self, env):
        runtime, _ = env
        tm = make_tm(env)  # valid content...
        runtime.space.region_at(tm).prot = Protection.READ  # ...read-only
        out = call(env, "mktime", tm)
        assert out.crashed and out.fault.access.value == "write"

    def test_mktime_out_of_range_year(self, env):
        out = call(env, "mktime", make_tm(env, year=200))
        assert out.return_value == -1 and out.errno == EOVERFLOW

    def test_strftime_formats(self, env):
        runtime, _ = env
        buffer = runtime.space.map_region(64).base
        out = call(env, "strftime", buffer, 64, cstr(env, "%Y-%m-%d %H:%M"), make_tm(env))
        assert out.return_value == len("2002-07-04 12:15")
        assert runtime.space.read_cstring(buffer) == b"2002-07-04 12:15"

    def test_strftime_output_too_big_returns_zero(self, env):
        runtime, _ = env
        buffer = runtime.space.map_region(64).base
        out = call(env, "strftime", buffer, 4, cstr(env, "%Y-%m-%d"), make_tm(env))
        assert out.return_value == 0 and not out.errno_was_set

    def test_strftime_unknown_directive_einval(self, env):
        runtime, _ = env
        buffer = runtime.space.map_region(64).base
        out = call(env, "strftime", buffer, 64, cstr(env, "%q"), make_tm(env))
        assert out.return_value == 0 and out.errno == EINVAL

    def test_time_stores_through_pointer(self, env):
        runtime, _ = env
        loc = runtime.space.map_region(8).base
        out = call(env, "time", loc)
        assert runtime.space.load_i64(loc) == out.return_value
        assert call(env, "time", NULL).returned

    def test_difftime_pure(self, env):
        assert call(env, "difftime", 100, 40).return_value == 60.0


class TestDirent:
    def open_dir(self, env, path="/tmp"):
        out = call(env, "opendir", cstr(env, path))
        assert out.return_value != NULL
        return out.return_value

    def test_opendir_lists_entries(self, env):
        runtime, _ = env
        dirp = self.open_dir(env)
        names = []
        while True:
            entry = call(env, "readdir", dirp).return_value
            if entry == NULL:
                break
            names.append(runtime.space.read_cstring(entry + 8).decode())
        assert names[:2] == [".", ".."]
        assert "input.txt" in names

    def test_opendir_errors(self, env):
        out = call(env, "opendir", cstr(env, "/missing"))
        assert out.return_value == NULL and out.errno == ENOENT
        out = call(env, "opendir", cstr(env, "/tmp/input.txt"))
        assert out.return_value == NULL and out.errno == ENOTDIR

    def test_telldir_seekdir_rewinddir(self, env):
        dirp = self.open_dir(env)
        call(env, "readdir", dirp)
        call(env, "readdir", dirp)
        assert call(env, "telldir", dirp).return_value == 2
        call(env, "seekdir", dirp, 1)
        assert call(env, "telldir", dirp).return_value == 1
        call(env, "rewinddir", dirp)
        assert call(env, "telldir", dirp).return_value == 0

    def test_closedir_frees_structures(self, env):
        runtime, _ = env
        dirp = self.open_dir(env)
        assert call(env, "closedir", dirp).return_value == 0
        # The DIR block is gone: further use crashes.
        assert call(env, "readdir", dirp).crashed

    def test_closedir_garbage_crashes(self, env):
        runtime, _ = env
        garbage = runtime.space.map_region(72)
        garbage.poke(garbage.base, b"\xa5" * 72)
        assert call(env, "closedir", garbage.base).crashed

    def test_readdir_stale_descriptor_ebadf(self, env):
        runtime, _ = env
        from repro.sandbox.context import CallContext

        dirp = dirent_fns.alloc_dir(CallContext(runtime), ["."], 222)
        out = call(env, "readdir", dirp)
        assert out.return_value == NULL and out.errno == EBADF


class TestTermios:
    def test_tcgetattr_fills_60_bytes(self, env):
        runtime, _ = env
        buffer = runtime.space.map_region(60).base
        assert call(env, "tcgetattr", 0, buffer).return_value == 0
        assert runtime.space.load_u32(buffer + 48) == 38400  # ispeed

    def test_tcgetattr_short_buffer_crashes(self, env):
        runtime, _ = env
        short = runtime.space.map_region(56)
        assert call(env, "tcgetattr", 0, short.base).crashed

    def test_tcgetattr_non_tty(self, env):
        runtime, _ = env
        from repro.libc.kernel import READ

        fd = runtime.kernel.open("/tmp/input.txt", READ)
        buffer = runtime.space.map_region(60).base
        out = call(env, "tcgetattr", fd, buffer)
        assert out.return_value == -1 and out.errno == ENOTTY

    def test_tcsetattr_round_trip(self, env):
        runtime, _ = env
        buffer = runtime.space.map_region(60).base
        call(env, "tcgetattr", 0, buffer)
        runtime.space.store_u32(buffer + 48, 9)
        assert call(env, "tcsetattr", 0, 0, buffer).return_value == 0
        assert runtime.kernel.get_termios(0).input_speed == 9

    def test_tcsetattr_bad_actions(self, env):
        buffer = env[0].space.map_region(60).base
        out = call(env, "tcsetattr", 0, 9, buffer)
        assert out.return_value == -1 and out.errno == EINVAL

    def test_cfsetispeed_needs_only_write_access(self, env):
        """Section 6's asymmetric-access finding."""
        runtime, _ = env
        wonly = runtime.space.map_region(60, Protection.WRITE)
        assert call(env, "cfsetispeed", wonly.base, 9).return_value == 0

    def test_cfsetospeed_needs_read_and_write(self, env):
        runtime, _ = env
        wonly = runtime.space.map_region(60, Protection.WRITE)
        assert call(env, "cfsetospeed", wonly.base, 9).crashed
        rw = runtime.space.map_region(60)
        assert call(env, "cfsetospeed", rw.base, 9).return_value == 0

    def test_cfset_invalid_speed(self, env):
        rw = env[0].space.map_region(60).base
        out = call(env, "cfsetispeed", rw, 77)
        assert out.return_value == -1 and out.errno == EINVAL

    def test_cfget_round_trip(self, env):
        runtime, _ = env
        buffer = runtime.space.map_region(60).base
        call(env, "tcgetattr", 0, buffer)
        call(env, "cfsetispeed", buffer, 9)
        call(env, "cfsetospeed", buffer, 10)
        assert call(env, "cfgetispeed", buffer).return_value == 9
        assert call(env, "cfgetospeed", buffer).return_value == 10

    def test_tcdrain_tcflush_never_crash(self, env):
        assert call(env, "tcdrain", -1).errno == EBADF
        assert call(env, "tcdrain", 0).return_value == 0
        assert call(env, "tcflush", 0, 7).errno == EINVAL
        assert call(env, "tcflush", 0, 1).return_value == 0
