"""Behavioural tests for the unistd/raw-I/O models, including their
interaction with the full pipeline."""

import pytest

from repro.libc import BY_NAME, standard_runtime
from repro.libc.errno_codes import EBADF, EINVAL, ENOENT, ERANGE
from repro.libc.unistd_fns import (
    CWD,
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    OFF_ST_MODE,
    OFF_ST_SIZE,
    S_IFDIR,
    S_IFREG,
    STAT_SIZE,
)
from repro.memory import NULL, Protection
from repro.sandbox import Sandbox


@pytest.fixture()
def env():
    return standard_runtime(), Sandbox()


def call(env, name, *args):
    runtime, sandbox = env
    return sandbox.call(BY_NAME[name].model, args, runtime)


def cstr(env, text):
    return env[0].space.alloc_cstring(text).base


class TestRawIO:
    def test_open_read_close_cycle(self, env):
        runtime, _ = env
        fd = call(env, "open", cstr(env, "/tmp/input.txt"), O_RDONLY).return_value
        buf = runtime.space.map_region(16).base
        got = call(env, "read", fd, buf, 5).return_value
        assert got == 5
        assert runtime.space.load(buf, 5) == b"hello"
        assert call(env, "close", fd).return_value == 0

    def test_open_missing_file(self, env):
        out = call(env, "open", cstr(env, "/nope"), O_RDONLY)
        assert out.return_value == -1 and out.errno == ENOENT

    def test_open_create_write(self, env):
        runtime, _ = env
        fd = call(env, "open", cstr(env, "/tmp/raw.txt"),
                  O_WRONLY | O_CREAT | O_TRUNC).return_value
        payload = runtime.space.alloc_bytes(b"12345")
        assert call(env, "write", fd, payload.base, 5).return_value == 5
        assert runtime.kernel.lookup("/tmp/raw.txt").data == bytearray(b"12345")

    def test_read_into_bad_buffer_crashes(self, env):
        fd = call(env, "open", cstr(env, "/tmp/input.txt"), O_RDONLY).return_value
        assert call(env, "read", fd, NULL, 8).crashed

    def test_read_bad_fd(self, env):
        buf = env[0].space.map_region(8).base
        out = call(env, "read", 999, buf, 8)
        assert out.return_value == -1 and out.errno == EBADF

    def test_write_from_unreadable_buffer_crashes(self, env):
        runtime, _ = env
        fd = call(env, "open", cstr(env, "/tmp/w.txt"), O_WRONLY | O_CREAT).return_value
        region = runtime.space.map_region(8, Protection.WRITE)
        assert call(env, "write", fd, region.base, 8).crashed

    def test_lseek(self, env):
        fd = call(env, "open", cstr(env, "/tmp/input.txt"), O_RDONLY).return_value
        assert call(env, "lseek", fd, 6, 0).return_value == 6
        out = call(env, "lseek", fd, 0, 42)
        assert out.return_value == -1 and out.errno == EINVAL

    def test_unlink_and_access(self, env):
        fd = call(env, "open", cstr(env, "/tmp/gone.txt"), O_WRONLY | O_CREAT).return_value
        call(env, "close", fd)
        assert call(env, "access", cstr(env, "/tmp/gone.txt"), 0).return_value == 0
        assert call(env, "unlink", cstr(env, "/tmp/gone.txt")).return_value == 0
        out = call(env, "access", cstr(env, "/tmp/gone.txt"), 0)
        assert out.return_value == -1 and out.errno == ENOENT


class TestGetcwd:
    def test_fills_buffer(self, env):
        runtime, _ = env
        buf = runtime.space.map_region(32).base
        out = call(env, "getcwd", buf, 32)
        assert out.return_value == buf
        assert runtime.space.read_cstring(buf) == CWD

    def test_too_small_erange(self, env):
        buf = env[0].space.map_region(4).base
        out = call(env, "getcwd", buf, 4)
        assert out.return_value == NULL and out.errno == ERANGE

    def test_null_buffer_allocates(self, env):
        runtime, _ = env
        out = call(env, "getcwd", NULL, 0)
        assert runtime.heap.block_containing(out.return_value) is not None
        assert runtime.space.read_cstring(out.return_value) == CWD

    def test_small_buffer_lies_about_size_crashes(self, env):
        """The classic getcwd bug: the caller claims 32 bytes but the
        buffer has 4 — the write runs off the end."""
        buf = env[0].space.map_region(4).base
        assert call(env, "getcwd", buf, 32).crashed


class TestStat:
    def test_stat_regular_file(self, env):
        runtime, _ = env
        statbuf = runtime.space.map_region(STAT_SIZE).base
        assert call(env, "stat", cstr(env, "/tmp/input.txt"), statbuf).return_value == 0
        assert runtime.space.load_u32(statbuf + OFF_ST_MODE) & S_IFREG
        expected = len(runtime.kernel.lookup("/tmp/input.txt").data)
        assert runtime.space.load_u64(statbuf + OFF_ST_SIZE) == expected

    def test_stat_directory(self, env):
        runtime, _ = env
        statbuf = runtime.space.map_region(STAT_SIZE).base
        call(env, "stat", cstr(env, "/tmp"), statbuf)
        assert runtime.space.load_u32(statbuf + OFF_ST_MODE) & S_IFDIR

    def test_stat_undersized_buffer_crashes(self, env):
        runtime, _ = env
        short = runtime.space.map_region(STAT_SIZE - 8)
        out = call(env, "stat", cstr(env, "/tmp/input.txt"), short.base)
        assert out.crashed

    def test_fstat(self, env):
        runtime, _ = env
        fd = call(env, "open", cstr(env, "/tmp/input.txt"), O_RDONLY).return_value
        statbuf = runtime.space.map_region(STAT_SIZE).base
        assert call(env, "fstat", fd, statbuf).return_value == 0
        out = call(env, "fstat", 999, statbuf)
        assert out.errno == EBADF

    def test_mkdir(self, env):
        assert call(env, "mkdir", cstr(env, "/tmp/newdir"), 0o755).return_value == 0
        out = call(env, "mkdir", cstr(env, "/tmp/newdir"), 0o755)
        assert out.return_value == -1  # already exists


class TestSprintf:
    def test_sprintf_formats(self, env):
        runtime, _ = env
        buf = runtime.space.map_region(64).base
        out = call(env, "sprintf", buf, cstr(env, "x=%d"), 7)
        assert out.return_value == 3
        assert runtime.space.read_cstring(buf) == b"x=7"

    def test_sprintf_overflows_unbounded(self, env):
        runtime, _ = env
        buf = runtime.space.map_region(4).base
        long_str = cstr(env, "long enough to overflow")
        out = call(env, "sprintf", buf, cstr(env, "%s"), long_str)
        assert out.crashed

    def test_snprintf_truncates_safely(self, env):
        runtime, _ = env
        buf = runtime.space.map_region(4).base
        long_str = cstr(env, "long enough to overflow")
        out = call(env, "snprintf", buf, 4, cstr(env, "%s"), long_str)
        assert out.return_value == 23  # the would-be length
        assert runtime.space.read_cstring(buf) == b"lon"


class TestPipelineIntegration:
    def test_injector_discovers_stat_buffer_size(self):
        from repro.injector import inject_function

        report = inject_function("stat")
        assert report.robust_types[1].robust.render() == f"W_ARRAY[{STAT_SIZE}]"

    def test_wrapped_read_rejects_overflow(self):
        from repro.core import HealersPipeline

        hardened = HealersPipeline(functions=["read", "open"]).run()
        runtime = standard_runtime()
        wrapper = hardened.wrapper()
        path = runtime.space.alloc_cstring("/tmp/data.bin").base
        fd = wrapper.call("open", [path, O_RDONLY], runtime).return_value
        small = runtime.heap.malloc(8)
        out = wrapper.call("read", [fd, small, 256], runtime)
        assert out.returned and out.errno_was_set  # rejected, no crash
        ok = wrapper.call("read", [fd, small, 8], runtime)
        assert ok.return_value == 8
