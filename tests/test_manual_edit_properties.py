"""Structural properties of the manual-edit layer and the generated
checks header."""

import pytest

from repro.declarations import apply_all_manual_edits, apply_manual_edits
from repro.typelattice import SEMI_AUTO_CHECKABLE
from repro.wrapper import generate_checks_header


class TestManualEditProperties:
    def test_edits_are_idempotent(self, declarations86):
        once = apply_all_manual_edits(declarations86)
        twice = apply_all_manual_edits(once)
        assert once == twice

    def test_edits_never_weaken_safety_attribute(self, declarations86):
        for name, decl in declarations86.items():
            edited = apply_manual_edits(decl)
            assert edited.attribute == decl.attribute
            assert edited.name == decl.name
            assert edited.arity == decl.arity

    def test_edited_types_are_semi_auto_checkable(self, declarations86):
        """Every robust type the manual edits introduce must have a
        checking function in the semi-auto tier — an edit the wrapper
        cannot enforce would be silently useless."""
        for name, decl in declarations86.items():
            edited = apply_manual_edits(decl)
            for argument in edited.arguments:
                assert argument.robust_type.name in SEMI_AUTO_CHECKABLE | {
                    "UNCONSTRAINED"
                }, f"{name}: {argument.robust_type}"

    def test_every_dir_function_gets_tracking(self, declarations86):
        for name in ("readdir", "closedir", "rewinddir", "seekdir", "telldir"):
            edited = apply_manual_edits(declarations86[name])
            assert "track_dir" in edited.assertions, name
            assert edited.arguments[0].robust_type.name == "OPEN_DIR"

    def test_every_stdio_function_gets_file_tracking(self, declarations86):
        for name in ("fclose", "fread", "fwrite", "fgets", "fseek", "fprintf"):
            edited = apply_manual_edits(declarations86[name])
            assert "track_file" in edited.assertions, name


class TestChecksHeader:
    @pytest.fixture(scope="class")
    def header(self):
        return generate_checks_header()

    def test_header_is_guarded(self, header):
        assert header.startswith("/*")
        assert "#ifndef HEALERS_CHECKS_H" in header
        assert header.rstrip().endswith("#endif /* HEALERS_CHECKS_H */")

    def test_every_emittable_check_is_declared(self, header):
        """Every check_* the code generator can reference must exist
        in the header, or the generated wrapper would not link."""
        import re

        from repro.wrapper.codegen import _CHECK_SIGNATURES

        declared = set(re.findall(r"\bcheck_[A-Za-z_]+", header))
        for template in _CHECK_SIGNATURES.values():
            match = re.match(r"(check_[A-Za-z_]+)\(", template)
            if match:
                assert match.group(1) in declared, template

    def test_assertion_helpers_declared(self, header):
        for assertion in ("track_dir", "track_file", "strtok_state"):
            assert f"healers_assert_{assertion}" in header
