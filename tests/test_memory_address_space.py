"""Unit tests for the simulated address space."""

import pytest

from repro.memory import (
    AccessKind,
    AddressSpace,
    NULL,
    OutOfMemory,
    PAGE_SIZE,
    Protection,
    RegionKind,
    SegmentationFault,
)


@pytest.fixture()
def space():
    return AddressSpace()


class TestMapping:
    def test_regions_do_not_overlap(self, space):
        regions = [space.map_region(100) for _ in range(10)]
        for a in regions:
            for b in regions:
                if a is not b:
                    assert not a.overlaps(b.base, b.size)

    def test_guard_gap_between_regions(self, space):
        first = space.map_region(10)
        space.map_region(10)
        # The byte immediately after a region is never mapped.
        assert space.region_at(first.end) is None

    def test_zero_size_region_is_legal_but_inaccessible(self, space):
        region = space.map_region(0)
        with pytest.raises(SegmentationFault):
            space.load(region.base, 1)

    def test_unmap_makes_addresses_fault(self, space):
        region = space.map_region(32)
        space.store(region.base, b"x")
        space.unmap(region)
        with pytest.raises(SegmentationFault):
            space.load(region.base, 1)

    def test_unmap_unknown_region_rejected(self, space):
        region = space.map_region(8)
        space.unmap(region)
        with pytest.raises(ValueError):
            space.unmap(region)

    def test_out_of_memory(self, space):
        with pytest.raises(OutOfMemory):
            space.map_region(2**60)

    def test_map_at_end_of_page_alignment(self, space):
        region = space.map_at_end_of_page(100)
        assert region.end % PAGE_SIZE == 0
        space.store(region.base, b"a" * 100)
        with pytest.raises(SegmentationFault):
            space.load(region.end, 1)


class TestAccessChecks:
    def test_null_dereference_faults_with_address_zero(self, space):
        with pytest.raises(SegmentationFault) as exc:
            space.load(NULL, 1)
        assert exc.value.address == 0
        assert exc.value.access is AccessKind.READ

    def test_unmapped_access_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.load(0xDEAD0000, 4)

    def test_read_past_end_reports_first_bad_address(self, space):
        region = space.map_region(10)
        with pytest.raises(SegmentationFault) as exc:
            space.load(region.base + 8, 8)
        assert exc.value.address == region.base + 10

    def test_write_to_read_only_faults(self, space):
        region = space.map_region(10, Protection.READ)
        with pytest.raises(SegmentationFault) as exc:
            space.store(region.base, b"x")
        assert exc.value.access is AccessKind.WRITE

    def test_read_from_write_only_faults(self, space):
        region = space.map_region(10, Protection.WRITE)
        with pytest.raises(SegmentationFault) as exc:
            space.load(region.base, 1)
        assert exc.value.access is AccessKind.READ

    def test_freed_region_faults(self, space):
        region = space.map_region(10)
        region.freed = True
        with pytest.raises(SegmentationFault):
            space.load(region.base, 1)

    def test_zero_length_access_never_faults(self, space):
        assert space.load(0xDEAD0000, 0) == b""
        space.store(0xDEAD0000, b"")

    def test_protect_changes_permissions(self, space):
        region = space.map_region(10)
        space.store(region.base, b"x")
        space.protect(region, Protection.READ)
        with pytest.raises(SegmentationFault):
            space.store(region.base, b"y")
        assert space.load(region.base, 1) == b"x"

    def test_is_readable_and_writable_probes(self, space):
        region = space.map_region(10, Protection.READ)
        assert space.is_readable(region.base, 10)
        assert not space.is_readable(region.base, 11)
        assert not space.is_writable(region.base, 1)
        assert not space.is_readable(NULL, 1)


class TestTypedAccess:
    def test_u32_round_trip(self, space):
        region = space.map_region(16)
        space.store_u32(region.base, 0xDEADBEEF)
        assert space.load_u32(region.base) == 0xDEADBEEF

    def test_i32_negative_round_trip(self, space):
        region = space.map_region(16)
        space.store_i32(region.base, -12345)
        assert space.load_i32(region.base) == -12345

    def test_i64_round_trip(self, space):
        region = space.map_region(16)
        space.store_i64(region.base, -(2**62))
        assert space.load_i64(region.base) == -(2**62)

    def test_u64_wraps_modulo(self, space):
        region = space.map_region(16)
        space.store_u64(region.base, 2**64 + 5)
        assert space.load_u64(region.base) == 5

    def test_pointer_round_trip(self, space):
        region = space.map_region(16)
        space.store_pointer(region.base, region.base)
        assert space.load_pointer(region.base) == region.base

    def test_little_endian_layout(self, space):
        region = space.map_region(8)
        space.store_u32(region.base, 0x01020304)
        assert space.load(region.base, 4) == b"\x04\x03\x02\x01"


class TestCStrings:
    def test_write_and_read_cstring(self, space):
        region = space.map_region(32)
        space.write_cstring(region.base, b"hello")
        assert space.read_cstring(region.base) == b"hello"
        assert space.cstring_length(region.base) == 5

    def test_unterminated_string_faults_at_region_end(self, space):
        region = space.alloc_bytes(b"\xa5" * 8)
        with pytest.raises(SegmentationFault) as exc:
            space.read_cstring(region.base)
        assert exc.value.address == region.end

    def test_alloc_cstring_appends_nul(self, space):
        region = space.alloc_cstring("abc")
        assert region.size == 4
        assert space.read_cstring(region.base) == b"abc"

    def test_read_cstring_respects_limit(self, space):
        region = space.alloc_cstring("abcdef")
        assert space.read_cstring(region.base, limit=3) == b"abc"


class TestFork:
    def test_fork_preserves_content(self, space):
        region = space.alloc_cstring("data")
        clone = space.fork()
        assert clone.read_cstring(region.base) == b"data"

    def test_fork_isolates_writes(self, space):
        region = space.map_region(8)
        clone = space.fork()
        clone.store(region.base, b"x")
        assert space.load(region.base, 1) == b"\x00"

    def test_fork_preserves_layout_cursor(self, space):
        space.map_region(8)
        clone = space.fork()
        a = space.map_region(8)
        b = clone.map_region(8)
        assert a.base == b.base  # deterministic layout across forks
