"""Copy-on-write fork and bulk fast-path equivalence tests.

Three layers of proof that the memory hot-path optimizations are pure
performance work:

* **COW aliasing** — writes on either side of a fork are never visible
  to the other side, for any interleaving of fork and write;
* **lookup-cache invalidation** — the one-entry region cache can never
  serve a stale region across ``map``/``unmap``/``protect``;
* **fuzz equivalence** — the slice-based C-string scans and the
  single-pass accessibility probe produce byte-for-byte the outcomes
  (payloads, memory states, fault addresses and reasons, watchdog step
  counts) of the per-byte reference implementations kept in
  :mod:`repro.memory.reference`, including a full fault-injection run
  over the string-function catalog under both implementations.
"""

from __future__ import annotations

import random

import pytest

from repro.libc import common
from repro.libc.catalog import BY_NAME
from repro.libc.runtime import standard_runtime
from repro.memory import (
    AccessKind,
    AddressSpace,
    NULL,
    Protection,
    SegmentationFault,
)
from repro.memory.address_space import INVALID_POINTER
from repro.memory import reference
from repro.sandbox.context import CallContext, Hang


def fault_key(fault):
    if fault is None:
        return None
    return (fault.address, fault.access, fault.reason)


def space_snapshot(space: AddressSpace) -> list[tuple[int, bytes]]:
    return [(r.base, bytes(r.data)) for r in space.regions()]


# ----------------------------------------------------------------------
# COW aliasing proofs
# ----------------------------------------------------------------------


class TestCowAliasing:
    def test_child_writes_invisible_to_parent(self):
        space = AddressSpace()
        region = space.alloc_bytes(b"parent--")
        child = space.fork()
        child.store(region.base, b"CHILD")
        assert space.load(region.base, 8) == b"parent--"
        assert child.load(region.base, 5) == b"CHILD"

    def test_parent_writes_after_fork_invisible_to_child(self):
        space = AddressSpace()
        region = space.alloc_bytes(b"original")
        child = space.fork()
        space.store(region.base, b"MUTATED!")
        assert child.load(region.base, 8) == b"original"
        assert space.load(region.base, 8) == b"MUTATED!"

    def test_siblings_are_mutually_isolated(self):
        space = AddressSpace()
        region = space.alloc_bytes(b"\x00" * 4)
        forks = [space.fork() for _ in range(4)]
        for index, fork in enumerate(forks):
            fork.store(region.base, bytes([index + 1]) * 4)
        assert space.load(region.base, 4) == b"\x00" * 4
        for index, fork in enumerate(forks):
            assert fork.load(region.base, 4) == bytes([index + 1]) * 4

    def test_grandchild_fork_chain(self):
        space = AddressSpace()
        region = space.alloc_bytes(b"aa")
        child = space.fork()
        child.store(region.base, b"bb")
        grandchild = child.fork()
        grandchild.store(region.base, b"cc")
        assert space.load(region.base, 2) == b"aa"
        assert child.load(region.base, 2) == b"bb"
        assert grandchild.load(region.base, 2) == b"cc"

    def test_poke_respects_cow(self):
        space = AddressSpace()
        region = space.alloc_bytes(b"xyz", prot=Protection.READ)
        child = space.fork()
        child_region = child.region_at(region.base)
        child_region.poke(region.base, b"ABC")
        assert space.load(region.base, 3) == b"xyz"
        assert child.load(region.base, 3) == b"ABC"

    def test_runtime_fork_is_isolated(self):
        runtime = standard_runtime()
        pointer = runtime.heap.malloc(16)
        runtime.space.store(pointer, b"heap state")
        child = runtime.fork()
        child.space.store(pointer, b"CHILDHEAP!")
        assert runtime.space.load(pointer, 10) == b"heap state"
        child.heap.free(pointer)
        assert runtime.heap.block_containing(pointer) is not None
        assert child.heap.block_containing(pointer) is None

    def test_fork_cost_does_not_scale_with_bytes(self):
        # O(region count), not O(total bytes): forking shares buffers,
        # so the big mapping must not be copied until someone writes.
        space = AddressSpace()
        region = space.map_region(1 << 20)
        child = space.fork()
        child_region = child.region_at(region.base)
        assert child_region.data is region.data  # aliased until a write
        child.store(region.base, b"x")
        assert child.region_at(region.base).data is not region.data

    def test_write_before_fork_then_after(self):
        space = AddressSpace()
        region = space.map_region(8)
        space.store(region.base, b"11111111")
        child = space.fork()
        space.store(region.base, b"22222222")
        child.store(region.base + 4, b"9999")
        assert space.load(region.base, 8) == b"22222222"
        assert child.load(region.base, 8) == b"11119999"


# ----------------------------------------------------------------------
# lookup cache invalidation
# ----------------------------------------------------------------------


class TestLookupCache:
    def test_lookup_populates_cache(self):
        space = AddressSpace()
        region = space.map_region(64)
        assert space.region_at(region.base + 3) is region
        assert space._lookup_cache is region

    def test_map_invalidates_cache(self):
        space = AddressSpace()
        region = space.map_region(64)
        space.region_at(region.base)
        space.map_region(64)
        assert space._lookup_cache is None

    def test_unmap_invalidates_cache(self):
        space = AddressSpace()
        region = space.map_region(64)
        space.region_at(region.base)
        space.unmap(region)
        assert space._lookup_cache is None
        assert space.region_at(region.base) is None
        with pytest.raises(SegmentationFault):
            space.load(region.base, 1)

    def test_protect_invalidates_cache(self):
        space = AddressSpace()
        region = space.map_region(64)
        space.region_at(region.base)
        space.protect(region, Protection.READ)
        assert space._lookup_cache is None
        with pytest.raises(SegmentationFault):
            space.store(region.base, b"x")

    def test_map_at_end_of_page_invalidates_cache(self):
        space = AddressSpace()
        first = space.map_region(16)
        space.region_at(first.base)
        space.map_at_end_of_page(100)
        assert space._lookup_cache is None

    def test_fork_starts_with_cold_cache(self):
        space = AddressSpace()
        region = space.map_region(16)
        space.region_at(region.base)
        child = space.fork()
        assert child._lookup_cache is None
        # and the child's cache never aliases parent regions
        child.region_at(region.base)
        assert child._lookup_cache is not region

    def test_cached_hits_stay_correct_across_unmap(self):
        space = AddressSpace()
        a = space.map_region(32)
        b = space.map_region(32)
        assert space.region_at(a.base) is a
        space.unmap(a)
        assert space.region_at(a.base) is None
        assert space.region_at(b.base) is b


# ----------------------------------------------------------------------
# fuzz equivalence: fast paths vs per-byte reference
# ----------------------------------------------------------------------


def build_fuzz_space(rng: random.Random) -> AddressSpace:
    """A randomized landscape of regions: mixed sizes, protections,
    freed flags, and payloads with NULs sprinkled or absent."""
    space = AddressSpace()
    for _ in range(rng.randint(3, 9)):
        size = rng.choice([0, 1, 2, 7, 16, 63, 256, 1024])
        prot = rng.choice(
            [Protection.RW, Protection.RW, Protection.READ, Protection.WRITE,
             Protection.NONE]
        )
        region = space.map_region(size, Protection.RW)
        if size:
            payload = bytes(
                rng.choice([0, rng.randint(1, 255), rng.randint(1, 255)])
                for _ in range(size)
            )
            if rng.random() < 0.4:  # force an unterminated tail
                payload = payload.rstrip(b"\x00") or b"\x01"
                payload += b"\x02" * (size - len(payload))
            region.poke(region.base, payload[:size])
        region.prot = prot
        if rng.random() < 0.15:
            region.freed = True
    return space


def fuzz_addresses(space: AddressSpace, rng: random.Random) -> list[int]:
    addresses = [NULL, INVALID_POINTER]
    for region in space.regions():
        addresses.extend(
            [region.base, region.end - 1 if region.size else region.base,
             region.end, region.base + rng.randint(0, max(region.size, 1))]
        )
    return addresses


class TestFuzzEquivalence:
    def test_scan_cstring_matches_reference(self):
        rng = random.Random(1234)
        for round_ in range(30):
            space = build_fuzz_space(rng)
            for address in fuzz_addresses(space, rng):
                for limit in (None, 0, 1, 5, 4096):
                    fast = space.scan_cstring(address, limit)
                    ref = reference.scan_cstring_ref(space, address, limit)
                    assert fast[0] == ref[0], (round_, address, limit)
                    assert fast[1] == ref[1], (round_, address, limit)
                    assert fault_key(fast[2]) == fault_key(ref[2]), (
                        round_, address, limit,
                    )

    def test_read_cstring_raises_identically(self):
        rng = random.Random(99)
        for _ in range(20):
            space = build_fuzz_space(rng)
            for address in fuzz_addresses(space, rng):
                try:
                    fast = ("ok", space.read_cstring(address))
                except SegmentationFault as fault:
                    fast = ("fault", fault_key(fault))
                try:
                    ref = ("ok", reference.read_cstring_ref(space, address))
                except SegmentationFault as fault:
                    ref = ("fault", fault_key(fault))
                assert fast == ref

    def test_write_cstring_matches_reference_including_partial_writes(self):
        rng = random.Random(4321)
        for round_ in range(30):
            space = build_fuzz_space(rng)
            fast_space = space.fork()
            ref_space = space.fork()
            for address in fuzz_addresses(space, rng):
                value = bytes(
                    rng.randint(1, 255) for _ in range(rng.choice([0, 1, 7, 40]))
                )
                try:
                    fast = ("ok", fast_space.write_cstring(address, value))
                except SegmentationFault as fault:
                    fast = ("fault", fault_key(fault))
                try:
                    ref = ("ok", reference.write_cstring_ref(ref_space, address, value))
                except SegmentationFault as fault:
                    ref = ("fault", fault_key(fault))
                assert fast == ref, (round_, address, value)
            # identical observable memory after every write, partial or not
            assert space_snapshot(fast_space) == space_snapshot(ref_space)

    def test_is_accessible_matches_reference(self):
        rng = random.Random(777)
        for _ in range(30):
            space = build_fuzz_space(rng)
            for address in fuzz_addresses(space, rng):
                for count in (0, 1, 2, 15, 64, 4096):
                    for access in (AccessKind.READ, AccessKind.WRITE):
                        assert space.is_accessible(address, count, access) == (
                            reference.is_accessible_ref(space, address, count, access)
                        ), (address, count, access)


# ----------------------------------------------------------------------
# ctx-level equivalence: libc helpers with step accounting
# ----------------------------------------------------------------------


def read_cstring_per_byte(ctx, address, limit=None):
    """The original byte-at-a-time libc helper (reference)."""
    out = bytearray()
    cursor = address
    while limit is None or len(out) < limit:
        byte = common.read_byte(ctx, cursor)
        if byte == 0:
            break
        out.append(byte)
        cursor += 1
    return bytes(out)


def write_cstring_per_byte(ctx, address, value):
    cursor = address
    for byte in value:
        common.write_byte(ctx, cursor, byte)
        cursor += 1
    common.write_byte(ctx, cursor, 0)


def run_helper(helper, runtime, budget, *args):
    """Execute ``helper(ctx, *args)`` and normalize the outcome."""
    ctx = CallContext(runtime, step_budget=budget)
    try:
        value = helper(ctx, *args)
        return ("ok", value, ctx.steps)
    except SegmentationFault as fault:
        return ("fault", fault_key(fault), ctx.steps)
    except Hang:
        return ("hang", None, ctx.steps)


class TestCtxEquivalence:
    @pytest.mark.parametrize("budget", [3, 5, 9, 1_000_000])
    def test_read_cstring_steps_and_faults_match(self, budget):
        rng = random.Random(31337)
        for _ in range(15):
            space = build_fuzz_space(rng)
            runtime = _SpaceRuntime(space)
            for address in fuzz_addresses(space, rng):
                for limit in (None, 0, 4):
                    fast = run_helper(
                        common.read_cstring, runtime, budget, address, limit
                    )
                    ref = run_helper(
                        read_cstring_per_byte, runtime, budget, address, limit
                    )
                    assert fast == ref, (address, limit, budget)

    @pytest.mark.parametrize("budget", [1, 4, 8, 1_000_000])
    def test_write_cstring_steps_faults_and_memory_match(self, budget):
        rng = random.Random(271828)
        for _ in range(15):
            space = build_fuzz_space(rng)
            fast_space = space.fork()
            ref_space = space.fork()
            for address in fuzz_addresses(space, rng):
                value = bytes(rng.randint(1, 255) for _ in range(rng.choice([0, 2, 6])))
                fast = run_helper(
                    common.write_cstring, _SpaceRuntime(fast_space), budget,
                    address, value,
                )
                ref = run_helper(
                    write_cstring_per_byte, _SpaceRuntime(ref_space), budget,
                    address, value,
                )
                assert fast == ref, (address, value, budget)
            assert space_snapshot(fast_space) == space_snapshot(ref_space)


class _SpaceRuntime:
    """Minimal duck-typed runtime for driving libc helpers directly."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self.heap = None
        self.kernel = None
        self.errno = 0


# ----------------------------------------------------------------------
# catalog-level equivalence: full injection runs under both substrates
# ----------------------------------------------------------------------

#: The string family exercises every fast path: cstring generators,
#: strlen-style scans, strcpy-style writes, and per-call forks.
CATALOG_SAMPLE = ["strcpy", "strncat", "strcmp", "strlen", "strpbrk", "strtok"]


def _reference_substrate(monkeypatch):
    """Swap every optimized primitive for its per-byte/eager twin."""
    monkeypatch.setattr(AddressSpace, "fork", reference.eager_fork)
    monkeypatch.setattr(
        AddressSpace, "is_accessible",
        lambda self, address, count, access: reference.is_accessible_ref(
            self, address, count, access
        ),
    )
    monkeypatch.setattr(
        AddressSpace, "read_cstring",
        lambda self, address, limit=None: reference.read_cstring_ref(
            self, address, limit
        ),
    )
    monkeypatch.setattr(
        AddressSpace, "write_cstring",
        lambda self, address, value: reference.write_cstring_ref(
            self, address, value
        ),
    )
    monkeypatch.setattr(
        AddressSpace, "cstring_length",
        lambda self, address: len(reference.read_cstring_ref(self, address)),
    )
    monkeypatch.setattr(common, "read_cstring", read_cstring_per_byte)
    monkeypatch.setattr(common, "write_cstring", write_cstring_per_byte)


@pytest.mark.parametrize("name", CATALOG_SAMPLE)
def test_injection_reports_identical_under_reference_semantics(name):
    from repro.injector import FaultInjector

    random.seed(20260805)
    fast_report = FaultInjector(BY_NAME[name]).run()

    with pytest.MonkeyPatch.context() as patch:
        _reference_substrate(patch)
        random.seed(20260805)
        ref_report = FaultInjector(BY_NAME[name]).run()

    assert fast_report == ref_report
