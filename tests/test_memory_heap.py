"""Unit tests for the simulated heap and its allocation table."""

import pytest

from repro.memory import AddressSpace, Heap, NULL, SegmentationFault


@pytest.fixture()
def heap():
    return Heap(AddressSpace())


class TestAllocator:
    def test_malloc_returns_writable_block(self, heap):
        pointer = heap.malloc(32)
        heap.space.store(pointer, b"x" * 32)
        assert heap.space.load(pointer, 32) == b"x" * 32

    def test_malloc_zero_returns_unique_inaccessible_pointer(self, heap):
        a = heap.malloc(0)
        b = heap.malloc(0)
        assert a != b != NULL
        with pytest.raises(SegmentationFault):
            heap.space.load(a, 1)

    def test_overflow_past_block_end_faults(self, heap):
        pointer = heap.malloc(16)
        with pytest.raises(SegmentationFault) as exc:
            heap.space.store(pointer, b"y" * 17)
        assert exc.value.address == pointer + 16

    def test_free_null_is_noop(self, heap):
        heap.free(NULL)

    def test_use_after_free_faults(self, heap):
        pointer = heap.malloc(8)
        heap.free(pointer)
        with pytest.raises(SegmentationFault):
            heap.space.load(pointer, 1)

    def test_double_free_faults(self, heap):
        pointer = heap.malloc(8)
        heap.free(pointer)
        with pytest.raises(SegmentationFault):
            heap.free(pointer)

    def test_free_of_non_block_faults(self, heap):
        region = heap.space.map_region(8)
        with pytest.raises(SegmentationFault):
            heap.free(region.base)

    def test_free_of_interior_pointer_faults(self, heap):
        pointer = heap.malloc(32)
        with pytest.raises(SegmentationFault):
            heap.free(pointer + 4)

    def test_realloc_grows_and_preserves_content(self, heap):
        pointer = heap.malloc(8)
        heap.space.store(pointer, b"abcdefgh")
        bigger = heap.realloc(pointer, 32)
        assert heap.space.load(bigger, 8) == b"abcdefgh"
        heap.space.store(bigger, b"z" * 32)

    def test_realloc_shrinks(self, heap):
        pointer = heap.malloc(32)
        heap.space.store(pointer, b"q" * 32)
        smaller = heap.realloc(pointer, 4)
        assert heap.space.load(smaller, 4) == b"qqqq"

    def test_realloc_null_acts_as_malloc(self, heap):
        pointer = heap.realloc(NULL, 16)
        assert pointer != NULL
        assert heap.live_block_count == 1

    def test_realloc_frees_old_block(self, heap):
        pointer = heap.malloc(8)
        heap.realloc(pointer, 16)
        with pytest.raises(SegmentationFault):
            heap.space.load(pointer, 1)

    def test_calloc_multiplies(self, heap):
        pointer = heap.calloc(4, 8)
        assert heap.space.load(pointer, 32) == bytes(32)


class TestAllocationTable:
    def test_block_containing_finds_interior_addresses(self, heap):
        pointer = heap.malloc(64)
        block = heap.block_containing(pointer + 10)
        assert block is not None
        assert block.base == pointer
        assert block.size == 64

    def test_block_containing_rejects_non_heap(self, heap):
        region = heap.space.map_region(16)
        assert heap.block_containing(region.base) is None

    def test_block_containing_rejects_freed(self, heap):
        pointer = heap.malloc(16)
        heap.free(pointer)
        assert heap.block_containing(pointer) is None

    def test_remaining_from_interior(self, heap):
        pointer = heap.malloc(100)
        assert heap.remaining_from(pointer) == 100
        assert heap.remaining_from(pointer + 60) == 40
        assert heap.remaining_from(pointer + 99) == 1

    def test_remaining_from_foreign_pointer_is_none(self, heap):
        assert heap.remaining_from(0x123456) is None

    def test_live_blocks_and_counters(self, heap):
        a = heap.malloc(8)
        heap.malloc(8)
        heap.free(a)
        assert heap.live_block_count == 1
        assert heap.malloc_count == 2
        assert heap.free_count == 1
