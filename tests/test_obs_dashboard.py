"""The HTML dashboard: deterministic render from a fixed fake-clock
dataset, section coverage, escaping, and self-containment."""

import html

import pytest

from repro.obs.dashboard import build_dashboard, render_sparkline
from repro.obs.ledger import Ledger


def fake_clock(start: float = 1_700_000_000.0, step: float = 60.0):
    state = {"now": start}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


@pytest.fixture()
def seeded_ledger(tmp_path):
    """One ledger holding every run kind, built with a fixed clock."""
    from types import SimpleNamespace

    from repro.campaign.runner import CampaignResult, FunctionOutcome

    ledger = Ledger(tmp_path / "ledger.sqlite", clock=fake_clock())

    def campaign(unsafe: bool, ident: str):
        report = SimpleNamespace(
            unsafe=unsafe, vectors_run=12, calls_made=36, retries=0,
            crashes=4 if unsafe else 1, hangs=0,
        )
        return CampaignResult(
            reports={"strcpy": report},
            outcomes={"strcpy": FunctionOutcome(
                name="strcpy", digest="abcdef0123456789", status="ran",
            )},
            campaign=ident,
        )

    ledger.ingest_campaign(campaign(unsafe=False, ident="aaaa000000000000"))
    ledger.ingest_campaign(campaign(unsafe=True, ident="bbbb000000000000"))
    for value in (140.0, 150.0, 160.0):
        ledger.ingest_bench_document(
            {"version": 1, "benchmarks": {"obs": {
                "per_call_overhead_ns": value,
                "checking_overhead_pct": value / 20.0,
            }}},
            source=f"BENCH_{value}.json",
        )
    ledger.ingest_service_rollup([
        {"kind": "counter", "name": "service.requests",
         "labels": {"op": "inject", "code": "OK"}, "value": 9},
        {"kind": "counter", "name": "service.cache",
         "labels": {"result": "hit"}, "value": 6},
        {"kind": "counter", "name": "service.cache",
         "labels": {"result": "miss"}, "value": 3},
        {"kind": "timer", "name": "service.request_seconds",
         "labels": {"op": "inject"}, "count": 9,
         "p50": 0.01, "p95": 0.02, "p99": 0.05, "total": 0.1},
    ])
    return ledger


class TestSparkline:
    def test_polyline_scaled_into_viewbox(self):
        svg = render_sparkline([1.0, 2.0, 3.0])
        assert svg.startswith('<svg class="spark"')
        assert "<polyline" in svg and "<circle" in svg
        assert "<title>1 → 2 → 3</title>" in svg

    def test_single_point_is_a_dot(self):
        svg = render_sparkline([5.0])
        assert "<polyline" not in svg and "<circle" in svg

    def test_empty_series_degrades(self):
        assert "svg" not in render_sparkline([])

    def test_flat_series_no_division_by_zero(self):
        svg = render_sparkline([2.0, 2.0, 2.0])
        assert "<polyline" in svg


class TestDeterminism:
    def test_two_renders_are_byte_identical(self, seeded_ledger):
        first = build_dashboard(seeded_ledger)
        second = build_dashboard(seeded_ledger)
        assert first == second

    def test_timestamps_come_from_the_data_not_the_wall_clock(
        self, seeded_ledger
    ):
        document = build_dashboard(seeded_ledger)
        # Every run was stamped by the fake clock in Nov 2023; a render
        # today must not leak the real date anywhere.
        assert "2023-11-14" in document
        assert "2026" not in document


class TestSections:
    def test_all_sections_render(self, seeded_ledger):
        document = build_dashboard(seeded_ledger)
        for section in (
            "Regression gate", "Robustness by function", "Overhead trends",
            "Cache economics", "Service traffic", "Bench trajectory",
        ):
            assert section in document, section

    def test_robustness_shows_flip_and_unsafe(self, seeded_ledger):
        document = build_dashboard(seeded_ledger)
        assert "strcpy" in document
        assert "UNSAFE (flipped)" in document

    def test_overhead_section_selects_pct_metrics(self, seeded_ledger):
        document = build_dashboard(seeded_ledger)
        section = document.split("Overhead trends")[1].split("<h2>")[0]
        assert "checking_overhead_pct" in section

    def test_cache_economics_covers_campaign_and_service(self, seeded_ledger):
        document = build_dashboard(seeded_ledger)
        section = document.split("Cache economics")[1].split("<h2>")[0]
        assert "campaign" in section and "service" in section
        assert "66.7%" in section  # 6 hits / 9 lookups

    def test_empty_ledger_renders_placeholders(self, tmp_path):
        document = build_dashboard(Ledger(tmp_path / "empty.sqlite"))
        assert "(empty ledger)" in document
        assert "no campaign runs ingested yet" in document
        assert "no comparable series yet" in document


class TestSelfContainment:
    def test_no_scripts_or_external_assets(self, seeded_ledger):
        document = build_dashboard(seeded_ledger)
        assert "<script" not in document
        assert "http://" not in document and "https://" not in document
        assert 'src="' not in document and "@import" not in document
        assert "<style>" in document  # inline CSS only

    def test_hostile_strings_are_escaped(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        ledger.ingest_bench_document(
            {"version": 1, "benchmarks": {
                '<script>alert(1)</script>': {"elapsed_seconds": 1.0},
            }},
            source='<img src=x onerror=alert(1)>',
        )
        document = build_dashboard(
            ledger, title='<b>"evil" & dangerous</b>'
        )
        assert "<script>alert(1)" not in document
        assert "<img src=x" not in document
        assert "<b>" not in document
        assert html.escape('<b>"evil" & dangerous</b>') in document
