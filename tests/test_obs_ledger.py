"""Ledger round-trip tests: ingest -> query -> render, plus the
corrupt/partial-file contract (typed LedgerError, never a crash)."""

import json
import sqlite3

import pytest

from repro.cli import main
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Ledger,
    LedgerError,
    flatten_metrics,
    functions_key,
    host_fingerprint,
    iso_timestamp,
    run_provenance,
)


def fake_clock(start: float = 1_700_000_000.0, step: float = 60.0):
    state = {"now": start}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


def bench_document(value: float, bench: str = "obs") -> dict:
    return {
        "version": 1,
        "benchmarks": {bench: {"overhead": {"per_call_overhead_ns": value}}},
    }


class TestProvenance:
    def test_run_provenance_fields(self):
        from repro import __version__

        provenance = run_provenance(clock=lambda: 1_700_000_000.0)
        assert provenance["repro_version"] == __version__
        assert provenance["timestamp"] == "2023-11-14T22:13:20Z"
        assert provenance["epoch_seconds"] == 1_700_000_000.0
        assert len(provenance["host"]) == 12

    def test_host_fingerprint_is_stable(self):
        assert host_fingerprint() == host_fingerprint()

    def test_iso_timestamp_is_utc_z(self):
        assert iso_timestamp(0) == "1970-01-01T00:00:00Z"


class TestFlattenMetrics:
    def test_nested_dicts_become_dotted_paths(self):
        assert flatten_metrics({"fork": {"speedup": 31.9}}) == {
            "fork.speedup": 31.9
        }

    def test_row_lists_key_on_function_name(self):
        payload = {"rows": [
            {"function": "strcpy", "checking_overhead_pct": 4.0},
            {"function": "memcpy", "checking_overhead_pct": 2.0},
        ]}
        flat = flatten_metrics(payload)
        assert flat == {
            "rows.strcpy.checking_overhead_pct": 4.0,
            "rows.memcpy.checking_overhead_pct": 2.0,
        }

    def test_booleans_and_strings_dropped(self):
        assert flatten_metrics({"ok": True, "name": "x", "n": 3}) == {"n": 3.0}

    def test_unkeyed_lists_use_indexes(self):
        assert flatten_metrics({"xs": [1, 2]}) == {"xs.0": 1.0, "xs.1": 2.0}

    def test_functions_key_order_independent(self):
        assert functions_key(["b", "a"]) == functions_key(["a", "b"])
        assert functions_key(["a"]) != functions_key(["a", "b"])


class TestBenchIngestion:
    def test_ingest_query_round_trip(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.sqlite", clock=fake_clock())
        run = ledger.ingest_bench_document(bench_document(140.0), source="a")
        assert run.id == 1 and run.kind == "bench" and not run.deduped
        series = ledger.bench_series()
        assert series[("obs", "overhead.per_call_overhead_ns")][0]["value"] == 140.0
        detail = ledger.run(run.id)
        assert detail["metrics"] == [
            {"bench": "obs", "metric": "overhead.per_call_overhead_ns",
             "value": 140.0}
        ]

    def test_reingest_is_idempotent(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        document = bench_document(140.0)
        document["provenance"] = run_provenance(clock=lambda: 1_700_000_000.0)
        first = ledger.ingest_bench_document(document, source="a")
        again = ledger.ingest_bench_document(document, source="a")
        assert again.deduped and again.id == first.id
        assert ledger.stats()["runs_total"] == 1

    def test_not_a_bench_document_is_typed_error(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite")
        with pytest.raises(LedgerError, match="not a BENCH document"):
            ledger.ingest_bench_document({"something": "else"}, source="x")
        with pytest.raises(LedgerError, match="not a BENCH document"):
            ledger.ingest_bench_document([1, 2], source="x")

    def test_ingest_file_errors_are_typed(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite")
        with pytest.raises(LedgerError, match="cannot read"):
            ledger.ingest_bench_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(LedgerError, match="not JSON"):
            ledger.ingest_bench_file(bad)

    def test_runs_newest_first_with_limit(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        for value in (1.0, 2.0, 3.0):
            ledger.ingest_bench_document(bench_document(value), source="a")
        runs = ledger.runs(limit=2)
        assert [r.id for r in runs] == [3, 2]
        assert [r.id for r in ledger.runs(kind="bench")] == [3, 2, 1]
        assert ledger.runs(kind="campaign") == []


class TestCampaignIngestion:
    def test_campaign_run_lands_with_function_rows_and_totals(self, tmp_path):
        from repro.campaign import CampaignConfig, CampaignRunner

        config = CampaignConfig(
            cache_dir=tmp_path / "cache", ledger=tmp_path / "ledger.sqlite"
        )
        result = CampaignRunner(["abs", "labs"], config=config).run()
        ledger = Ledger(tmp_path / "ledger.sqlite")
        campaigns = ledger.campaign_runs()
        assert len(campaigns) == 1
        run, rows = campaigns[0]
        assert run.label == result.campaign
        assert [r["function"] for r in rows] == ["abs", "labs"]
        assert all(r["unsafe"] in (0, 1) for r in rows)
        fnset = run.extra["functions_key"]
        series = ledger.bench_series()
        totals = series[(f"campaign.{fnset}", "unsafe_total")]
        assert totals[0]["value"] == float(len(run.extra["unsafe"]))
        assert (f"campaign.{fnset}", "vectors_total") in series

    def test_warm_rerun_dedupes_not_duplicates(self, tmp_path):
        from repro.campaign import CampaignConfig, CampaignRunner

        config = CampaignConfig(
            cache_dir=tmp_path / "cache", ledger=tmp_path / "ledger.sqlite"
        )
        CampaignRunner(["abs"], config=config).run()
        CampaignRunner(["abs"], config=config).run()  # warm, same identity
        assert Ledger(tmp_path / "ledger.sqlite").stats()["by_kind"] == {
            "campaign": 1
        }

    def test_broken_ledger_never_fails_the_campaign(self, tmp_path):
        from repro.campaign import CampaignConfig, CampaignRunner

        db = tmp_path / "ledger.sqlite"
        db.write_bytes(b"this is not a sqlite file, not even close....")
        config = CampaignConfig(cache_dir=tmp_path / "cache", ledger=db)
        result = CampaignRunner(["abs"], config=config).run()
        assert "abs" in result.reports  # the campaign itself succeeded


class TestServiceIngestion:
    def test_rollup_rows(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        snapshots = [
            {"kind": "counter", "name": "service.requests",
             "labels": {"op": "inject", "code": "OK"}, "value": 7},
            {"kind": "counter", "name": "service.cache",
             "labels": {"result": "hit"}, "value": 5},
            {"kind": "timer", "name": "service.request_seconds",
             "labels": {"op": "inject"}, "count": 7,
             "p50": 0.010, "p95": 0.020, "p99": 0.030, "total": 0.080},
        ]
        run = ledger.ingest_service_rollup(snapshots)
        assert run.extra["requests_total"] == 7
        assert run.extra["cache"] == {"hit": 5}
        history = ledger.service_history()
        assert len(history) == 1
        _, rows = history[0]
        counter_row = next(r for r in rows if r["code"] == "OK")
        assert counter_row["requests"] == 7
        latency_row = next(r for r in rows if r["code"] is None)
        assert latency_row["p50_ms"] == pytest.approx(10.0)
        assert latency_row["p99_ms"] == pytest.approx(30.0)


class TestCorruptAndPartial:
    def test_garbage_bytes_raise_ledger_error(self, tmp_path):
        db = tmp_path / "garbage.sqlite"
        db.write_bytes(b"\x00\x01garbage" * 64)
        with pytest.raises(LedgerError, match="corrupt or unreadable"):
            Ledger(db).stats()

    def test_truncated_database_raises_ledger_error(self, tmp_path):
        db = tmp_path / "l.sqlite"
        ledger = Ledger(db, clock=fake_clock())
        ledger.ingest_bench_document(bench_document(1.0), source="a")
        db.write_bytes(db.read_bytes()[:300])  # partial write / torn copy
        with pytest.raises(LedgerError):
            Ledger(db).runs()

    def test_schema_mismatch_is_typed(self, tmp_path):
        db = tmp_path / "l.sqlite"
        Ledger(db).stats()  # create schema
        with sqlite3.connect(db) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema'",
                (str(LEDGER_SCHEMA + 1),),
            )
        with pytest.raises(LedgerError, match="schema"):
            Ledger(db).stats()

    def test_missing_run_is_typed(self, tmp_path):
        with pytest.raises(LedgerError, match="no run 42"):
            Ledger(tmp_path / "l.sqlite").run(42)


class TestGc:
    def test_trims_per_kind_and_cascades(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        for value in range(5):
            ledger.ingest_bench_document(
                bench_document(float(value)), source="a"
            )
        stats = ledger.gc(keep=2)
        assert stats.runs_deleted == 3 and stats.runs_kept == 2
        assert stats.rows_deleted == 3  # one metric row per doomed run
        assert [r.id for r in ledger.runs()] == [5, 4]
        # Series only contain surviving points.
        points = ledger.bench_series()[("obs", "overhead.per_call_overhead_ns")]
        assert [p["value"] for p in points] == [3.0, 4.0]

    def test_negative_keep_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Ledger(tmp_path / "l.sqlite").gc(keep=-1)


class TestCli:
    def test_import_report_html_acceptance_flow(self, tmp_path, capsys):
        # The ISSUE acceptance path: export a bench artifact, import it,
        # render the dashboard from ledger data alone.
        from repro.obs import export_bench_json

        bench = tmp_path / "BENCH_obs.json"
        export_bench_json(
            "obs", {"overhead": {"per_call_overhead_ns": 140.0}}, path=bench
        )
        document = json.loads(bench.read_text())
        assert "provenance" in document  # stamped on export
        db = tmp_path / "ledger.sqlite"
        assert main(["ledger", "--db", str(db), "import", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        html = tmp_path / "dashboard.html"
        assert main(["report", "--html", str(html), "--db", str(db)]) == 0
        rendered = html.read_text()
        assert rendered.startswith("<!DOCTYPE html>")
        assert "Overhead trends" in rendered
        assert "Cache economics" in rendered
        assert "Robustness by function" in rendered
        # Self-contained: no external fetches of any kind.
        assert "http://" not in rendered and "https://" not in rendered
        assert "<script" not in rendered

    def test_import_bad_file_reports_and_continues(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"no": "benchmarks"}')
        good = tmp_path / "BENCH_good.json"
        good.write_text(json.dumps(bench_document(1.0)))
        db = tmp_path / "l.sqlite"
        code = main(["ledger", "--db", str(db), "import", str(bad), str(good)])
        assert code == 1
        captured = capsys.readouterr()
        assert "skipped" in captured.err
        assert "ingested" in captured.out

    def test_list_show_gc(self, tmp_path, capsys):
        db = tmp_path / "l.sqlite"
        Ledger(db, clock=fake_clock()).ingest_bench_document(
            bench_document(1.0), source="a"
        )
        assert main(["ledger", "--db", str(db), "list"]) == 0
        assert "bench" in capsys.readouterr().out
        assert main(["ledger", "--db", str(db), "list", "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert listed["ledger"]["runs_total"] == 1
        assert main(["ledger", "--db", str(db), "show", "1"]) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["run"]["kind"] == "bench"
        assert main(["ledger", "--db", str(db), "gc", "--keep", "0"]) == 0
        assert "deleted 1" in capsys.readouterr().out

    def test_corrupt_db_is_error_exit_not_traceback(self, tmp_path, capsys):
        db = tmp_path / "corrupt.sqlite"
        db.write_bytes(b"\x00garbage" * 99)
        assert main(["ledger", "--db", str(db), "list"]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_report_without_trace_or_html_errors(self, capsys):
        assert main(["report"]) == 2
        assert "TRACE file or --html" in capsys.readouterr().err
