"""Unit tests for the obs metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    render_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("sandbox.calls")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_series_key_without_labels(self):
        assert Counter("injector.retries").series_key() == "injector.retries"


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("pipeline.pending")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8


class TestHistogram:
    def test_aggregates(self):
        histogram = Histogram("wrapper.check_ns")
        for value in (4.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == 2.5

    def test_quantiles_nearest_rank(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.quantile(0.0) == 1.0
        assert abs(histogram.quantile(0.5) - 50.0) <= 1.0
        assert abs(histogram.quantile(0.95) - 95.0) <= 1.0
        assert histogram.quantile(1.0) == 100.0

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_decimation_keeps_aggregates_exact(self):
        histogram = Histogram("h", sample_cap=64)
        n = 10_000
        for value in range(n):
            histogram.observe(float(value))
        # Aggregates never decimate...
        assert histogram.count == n
        assert histogram.max == float(n - 1)
        # ...and the retained sample stays bounded but representative.
        assert len(histogram._samples) <= 64
        assert abs(histogram.quantile(0.5) - n / 2) < n * 0.1

    def test_decimation_is_deterministic(self):
        def build():
            histogram = Histogram("h", sample_cap=32)
            for value in range(1000):
                histogram.observe(float(value))
            return histogram._samples

        assert build() == build()


class TestTimer:
    def test_context_manager_observes_elapsed(self):
        timer = Timer("t")
        with timer.time():
            pass
        with timer.time():
            pass
        assert timer.count == 2
        assert timer.seconds >= 0.0
        assert timer.seconds == timer.total


class TestRegistry:
    def test_same_identity_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("sandbox.calls", status="CRASHED")
        b = registry.counter("sandbox.calls", status="CRASHED")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_label_values_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("sandbox.calls", status="CRASHED").inc()
        registry.counter("sandbox.calls", status="RETURNED").inc(3)
        assert len(registry.series("sandbox.calls")) == 2
        assert registry.value("sandbox.calls", status="RETURNED") == 3

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b
        assert a.series_key() == "c{x=1,y=2}"

    def test_value_does_not_create_series(self):
        registry = MetricsRegistry()
        assert registry.value("never.recorded") == 0
        assert len(registry) == 0

    def test_collect_snapshots_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("ns").observe(1.0)
        with registry.timer("secs").time():
            pass
        kinds = {snap["kind"] for snap in registry.collect()}
        assert kinds == {"counter", "gauge", "histogram", "timer"}
        counter_snap = next(
            s for s in registry.collect() if s["name"] == "calls"
        )
        assert counter_snap["value"] == 2

    def test_histogram_snapshot_has_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("ns", function="strcpy")
        for value in range(10):
            histogram.observe(float(value))
        snap = histogram.snapshot()
        assert snap["labels"] == {"function": "strcpy"}
        assert {"p50", "p95", "p99", "mean", "count"} <= set(snap)


class TestRenderPrometheus:
    def test_counter_family(self):
        registry = MetricsRegistry()
        registry.counter("sandbox.calls", status="CRASHED").inc(2)
        registry.counter("sandbox.calls", status="RETURNED").inc(5)
        body = render_prometheus(registry)
        assert "# TYPE sandbox_calls_total counter" in body
        assert 'sandbox_calls_total{status="CRASHED"} 2' in body
        assert 'sandbox_calls_total{status="RETURNED"} 5' in body
        # One TYPE line per family, not per series.
        assert body.count("# TYPE sandbox_calls_total") == 1

    def test_gauge_keeps_plain_name(self):
        registry = MetricsRegistry()
        registry.gauge("pipeline.pending").set(7)
        body = render_prometheus(registry)
        assert "# TYPE pipeline_pending gauge" in body
        assert "pipeline_pending 7" in body

    def test_timer_renders_as_summary_with_quantiles(self):
        registry = MetricsRegistry()
        with registry.timer("request.seconds", op="inject").time():
            pass
        body = render_prometheus(registry)
        assert "# TYPE request_seconds summary" in body
        assert 'request_seconds{op="inject",quantile="0.5"}' in body
        assert 'request_seconds{op="inject",quantile="0.99"}' in body
        assert 'request_seconds_sum{op="inject"}' in body
        assert 'request_seconds_count{op="inject"} 1' in body

    def test_names_sanitized_and_labels_escaped(self):
        registry = MetricsRegistry()
        registry.counter("9bad-name.x", path='a"b\\c').inc()
        body = render_prometheus(registry)
        assert "_9bad_name_x_total" in body
        assert 'path="a\\"b\\\\c"' in body

    def test_hostile_label_values_escaped_per_exposition_format(self):
        # Backslash, double-quote, and newline are the three characters
        # the text exposition format escapes inside label values; a raw
        # newline would split the sample line and corrupt the scrape.
        registry = MetricsRegistry()
        hostile = 'line1\nline2"quoted"\\trail\\'
        registry.counter("service.requests", op=hostile).inc()
        registry.gauge("g", who='"\n\\').set(1)
        body = render_prometheus(registry)
        for line in body.splitlines():
            assert "\n" not in line  # by construction, but explicit
        assert "line1\nline2" not in body  # raw newline never survives
        assert r'op="line1\nline2\"quoted\"\\trail\\"' in body
        # Escape order matters: backslash first, so the literal \n in
        # the input does not get its backslash double-escaped.
        assert r'who="\"\n\\"' in body

    def test_accepts_snapshot_dicts_deterministically(self):
        snapshots = [
            {"kind": "counter", "name": "b", "labels": {}, "value": 1},
            {"kind": "counter", "name": "a", "labels": {}, "value": 2},
        ]
        body = render_prometheus(snapshots)
        assert body.index("a_total") < body.index("b_total")
        assert body == render_prometheus(list(reversed(snapshots)))

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
