"""The regression gate: typed verdicts, thresholds, direction
inference, campaign unsafe flips, and the CLI exit-code contract."""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import Ledger
from repro.obs.regressions import (
    RegressionReport,
    Verdict,
    check_regressions,
    metric_direction,
)


def fake_clock(start: float = 1_700_000_000.0, step: float = 60.0):
    state = {"now": start}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return clock


def seed_series(ledger: Ledger, values, metric="elapsed_seconds", bench="b"):
    for index, value in enumerate(values):
        ledger.ingest_bench_document(
            {"version": 1, "benchmarks": {bench: {metric: value}}},
            source=f"run{index}",
        )


class TestDirectionInference:
    def test_lower_is_better_tokens(self):
        for name in ("elapsed_seconds", "p99_ms", "checking_overhead_pct",
                     "latency", "peak_bytes", "unsafe_total"):
            assert metric_direction(name) == "lower", name

    def test_higher_is_better_tokens(self):
        for name in ("fork.speedup", "cache_hit_rate_pct", "warm_rps",
                     "throughput"):
            assert metric_direction(name) == "higher", name

    def test_undirected_counts_are_not_gated(self):
        for name in ("functions", "jobs", "cores"):
            assert metric_direction(name) is None, name


class TestVerdicts:
    def test_identical_runs_are_ok_and_exit_zero(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        seed_series(ledger, [1.0, 1.0, 1.0, 1.0])
        report = check_regressions(ledger)
        assert report.ok and report.exit_code == 0
        assert [v.verdict for v in report.verdicts] == ["ok"]

    def test_2x_slowdown_regresses_and_exits_nonzero(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        seed_series(ledger, [1.0, 1.0, 1.0, 2.0])  # the seeded 2x fixture
        report = check_regressions(ledger)
        assert not report.ok and report.exit_code == 1
        verdict = report.regressed[0]
        assert verdict.metric == "b/elapsed_seconds"
        assert verdict.ratio == pytest.approx(2.0)

    def test_2x_speedup_improves(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        seed_series(ledger, [1.0, 1.0, 0.5])
        report = check_regressions(ledger)
        assert report.ok
        assert [v.verdict for v in report.verdicts] == ["improved"]

    def test_higher_better_metric_regresses_on_drop(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        seed_series(ledger, [30.0, 30.0, 10.0], metric="fork.speedup")
        report = check_regressions(ledger)
        assert report.regressed[0].metric == "b/fork.speedup"
        assert report.regressed[0].direction == "higher"

    def test_single_point_is_new_not_gated(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        seed_series(ledger, [1.0])
        report = check_regressions(ledger)
        assert report.verdicts[0].verdict == "new"
        assert report.exit_code == 0

    def test_baseline_window_bounds_the_mean(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        # Ancient slow history must not mask a fresh regression when the
        # window only covers the recent fast points.
        seed_series(ledger, [10.0, 10.0, 1.0, 1.0, 1.0, 2.0])
        report = check_regressions(ledger, baseline=3)
        assert report.regressed
        # A window wide enough to reach the slow era dilutes the mean.
        wide = check_regressions(ledger, baseline=5)
        assert not wide.regressed

    def test_noise_floor_below_min_value(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        seed_series(ledger, [1e-9, 1e-9, 5e-9])
        report = check_regressions(ledger)
        assert report.verdicts[0].verdict == "ok"
        assert "noise" in report.verdicts[0].detail

    def test_zero_crossing_is_a_real_change(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        seed_series(ledger, [0.0, 0.0, 3.0], metric="crashes_total_pct")
        report = check_regressions(ledger)
        assert report.regressed
        assert "zero crossing" in report.regressed[0].detail

    def test_invalid_arguments_rejected(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite")
        with pytest.raises(ValueError):
            check_regressions(ledger, baseline=0)
        with pytest.raises(ValueError):
            check_regressions(ledger, regress_ratio=1.0)


class TestCampaignFlips:
    def _campaign_result(self, unsafe: bool):
        from types import SimpleNamespace

        from repro.campaign.runner import CampaignResult, FunctionOutcome

        report = SimpleNamespace(
            unsafe=unsafe, vectors_run=10, calls_made=30, retries=1,
            crashes=3 if unsafe else 0, hangs=0,
        )
        return CampaignResult(
            reports={"abs": report},
            outcomes={
                "abs": FunctionOutcome(name="abs", digest="d" * 16,
                                       status="ran")
            },
            campaign="test" + ("1" if unsafe else "0"),
        )

    def test_safe_to_unsafe_flip_regresses(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        ledger.ingest_campaign(self._campaign_result(unsafe=False))
        ledger.ingest_campaign(self._campaign_result(unsafe=True))
        report = check_regressions(ledger)
        flips = [v for v in report.verdicts if v.direction == "flag"]
        assert flips and flips[0].verdict == "regressed"
        assert flips[0].metric == "campaign[abs].unsafe"
        assert report.exit_code == 1

    def test_unsafe_to_safe_flip_improves(self, tmp_path):
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        ledger.ingest_campaign(self._campaign_result(unsafe=True))
        ledger.ingest_campaign(self._campaign_result(unsafe=False))
        report = check_regressions(ledger)
        flips = [v for v in report.verdicts if v.direction == "flag"]
        assert flips and flips[0].verdict == "improved"

    def test_unsafe_counts_only_gated_as_flips_not_ratios(self, tmp_path):
        # unsafe_total is a lower-better series: more unsafe functions
        # between runs of the same set must regress via the totals too.
        ledger = Ledger(tmp_path / "l.sqlite", clock=fake_clock())
        ledger.ingest_campaign(self._campaign_result(unsafe=False))
        ledger.ingest_campaign(self._campaign_result(unsafe=True))
        report = check_regressions(ledger)
        totals = [v for v in report.verdicts if "unsafe_total" in v.metric]
        assert totals and totals[0].verdict == "regressed"


class TestReportRendering:
    def test_render_and_json_shapes(self):
        report = RegressionReport(verdicts=[
            Verdict("b/x_seconds", "regressed", "lower", 2.0, 1.0, 2.0, 3),
            Verdict("b/y_seconds", "ok", "lower", 1.0, 1.0, 1.0, 3),
        ])
        text = report.render()
        assert "REGRESSED" in text and "b/x_seconds" in text
        assert text.index("b/x_seconds") < text.index("b/y_seconds")
        document = report.to_json()
        assert document["ok"] is False
        assert document["counts"]["regressed"] == 1


class TestCliGate:
    def _seed(self, db, values):
        seed_series(Ledger(db, clock=fake_clock()), values)

    def test_identical_runs_exit_zero(self, tmp_path, capsys):
        db = tmp_path / "l.sqlite"
        self._seed(db, [1.0, 1.0, 1.0])
        assert main(["regressions", "--db", str(db)]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_seeded_2x_slowdown_exits_nonzero(self, tmp_path, capsys):
        db = tmp_path / "l.sqlite"
        self._seed(db, [1.0, 1.0, 2.0])
        assert main(["regressions", "--db", str(db)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        db = tmp_path / "l.sqlite"
        self._seed(db, [1.0, 1.0, 2.0])
        assert main(["regressions", "--db", str(db), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False

    def test_custom_threshold(self, tmp_path):
        db = tmp_path / "l.sqlite"
        self._seed(db, [1.0, 1.0, 2.0])
        assert main(["regressions", "--db", str(db), "--ratio", "2.5"]) == 0

    def test_bad_arguments_exit_two(self, tmp_path, capsys):
        db = tmp_path / "l.sqlite"
        assert main(["regressions", "--db", str(db), "--baseline", "0"]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_corrupt_db_exits_two(self, tmp_path, capsys):
        db = tmp_path / "corrupt.sqlite"
        db.write_bytes(b"nope" * 100)
        assert main(["regressions", "--db", str(db)]) == 2
        assert "corrupt" in capsys.readouterr().err
