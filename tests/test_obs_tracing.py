"""Unit tests for tracing and the telemetry façade (repro.obs)."""

import json

import pytest

from repro.obs import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    Tracer,
    iter_trace,
    read_trace,
    render_report,
    summarize_trace,
    summarize_trace_file,
)


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("campaign") as campaign:
            with tracer.span("injector.function") as function:
                with tracer.span("sandbox.call"):
                    pass
        spans = {r["name"]: r for r in tracer.records()}
        assert spans["campaign"]["parent"] is None
        assert spans["injector.function"]["parent"] == campaign.span_id
        assert spans["sandbox.call"]["parent"] == function.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        children = [r for r in tracer.records() if r["name"] in "ab"]
        assert [c["parent"] for c in children] == [parent.span_id] * 2

    def test_attrs_set_after_entry(self):
        tracer = Tracer()
        with tracer.span("call", kind="x") as span:
            span.set(status="CRASHED")
        record = tracer.records()[0]
        assert record["attrs"] == {"kind": "x", "status": "CRASHED"}

    def test_exception_tagged_and_stack_popped(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current_span_id is None
        assert tracer.records()[0]["attrs"]["error"] == "RuntimeError"

    def test_duration_measured(self):
        tracer = Tracer()
        with tracer.span("timed"):
            pass
        assert tracer.records()[0]["duration"] >= 0.0

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            tracer.event("violation", detail="arg 0")
        event = next(r for r in tracer.records() if r["type"] == "event")
        assert event["parent"] == parent.span_id
        assert event["attrs"] == {"detail": "arg 0"}

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.event("e", index=index)
        records = tracer.records()
        assert len(records) == 4
        assert [r["attrs"]["index"] for r in records] == [6, 7, 8, 9]
        assert tracer.dropped == 6


class TestJsonlRoundTrip:
    def test_export_and_read_back(self, tmp_path):
        tracer = Tracer()
        with tracer.span("campaign", functions=2):
            tracer.event("marker")
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(path)
        records = read_trace(path)
        assert written == len(records) == 3  # header + event + span
        header = records[0]
        assert header["type"] == "trace"
        assert header["records"] == 2
        names = {r.get("name") for r in records[1:]}
        assert names == {"campaign", "marker"}

    def test_invalid_jsonl_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "trace"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_iter_trace_streams_and_matches_read_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("campaign"):
            tracer.event("marker")
        path = tmp_path / "t.jsonl"
        tracer.export_jsonl(path)
        streamed = iter_trace(path)
        assert not isinstance(streamed, list)  # a lazy generator
        assert list(streamed) == read_trace(path)


class TestStreamingSummary:
    def test_multi_thousand_span_trace_summarizes_by_streaming(self, tmp_path):
        # A trace big enough that loading it whole would be the wrong
        # shape: 5000 spans + a metric record, written line by line.
        path = tmp_path / "big.jsonl"
        spans = 5000
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"type": "trace", "version": 1, "records": spans + 1,
                 "dropped": 0}
            ) + "\n")
            for index in range(spans):
                handle.write(json.dumps({
                    "type": "span", "id": index + 1, "parent": None,
                    "name": "sandbox.call", "start": index * 1e-4,
                    "duration": 2e-5,
                    "attrs": {"status": "RETURNED"},
                }) + "\n")
            handle.write(json.dumps({
                "type": "metric", "kind": "counter", "name": "sandbox.calls",
                "labels": {"status": "RETURNED"}, "value": spans,
            }) + "\n")
        summary = summarize_trace_file(path)
        assert summary.spans == spans
        assert summary.phases["sandbox.call"].count == spans
        assert summary.sandbox_calls == {"RETURNED": spans}
        # Same numbers as the load-everything path.
        assert summarize_trace(read_trace(path)).phases[
            "sandbox.call"
        ].total_seconds == summary.phases["sandbox.call"].total_seconds

    def test_summarize_accepts_a_generator(self):
        def generate():
            yield {"type": "span", "name": "x", "duration": 0.5}
            yield {"type": "event", "name": "e", "at": 0.0}

        summary = summarize_trace(generate())
        assert summary.spans == 1
        assert summary.events == 1
        assert summary.phases["x"].total_seconds == 0.5

    def test_telemetry_export_appends_metric_records(self, tmp_path):
        telemetry = Telemetry()
        telemetry.counter("sandbox.calls", status="CRASHED").inc(7)
        with telemetry.span("campaign"):
            pass
        path = tmp_path / "t.jsonl"
        telemetry.export_jsonl(path)
        records = read_trace(path)
        metrics = [r for r in records if r["type"] == "metric"]
        assert metrics == [
            {
                "type": "metric",
                "kind": "counter",
                "name": "sandbox.calls",
                "labels": {"status": "CRASHED"},
                "value": 7,
            }
        ]


class TestNullTelemetry:
    def test_is_inert_and_shared(self):
        null = NULL_TELEMETRY
        assert isinstance(null, NullTelemetry)
        assert not null.enabled
        assert null.scope(function="strcpy") is null

    def test_all_operations_noop(self):
        null = NULL_TELEMETRY
        null.counter("c", status="X").inc(5)
        null.gauge("g").set(3)
        null.histogram("h").observe(1.0)
        with null.timer("t").time():
            pass
        with null.span("s", a=1) as span:
            span.set(b=2)
        null.event("e")
        assert null.counter("c", status="X").value == 0

    def test_export_writes_nothing(self, tmp_path):
        path = tmp_path / "never.jsonl"
        assert NULL_TELEMETRY.export_jsonl(path) == 0
        assert not path.exists()


class TestScopedTelemetry:
    def test_scope_stamps_metric_labels(self):
        telemetry = Telemetry()
        scope = telemetry.scope(function="strcpy")
        scope.counter("injector.retries").inc()
        assert telemetry.registry.value("injector.retries", function="strcpy") == 1

    def test_scope_stamps_span_attrs(self):
        telemetry = Telemetry()
        with telemetry.scope(function="strcpy").span("injector.vector", index=3):
            pass
        record = telemetry.tracer.records()[0]
        assert record["attrs"] == {"function": "strcpy", "index": 3}

    def test_nested_scopes_merge_and_override(self):
        telemetry = Telemetry()
        inner = telemetry.scope(function="strcpy").scope(phase="verify")
        inner.counter("c", function="strlen").inc()
        assert (
            telemetry.registry.value("c", function="strlen", phase="verify") == 1
        )


class TestSummarize:
    def test_report_from_round_tripped_trace(self, tmp_path):
        telemetry = Telemetry()
        telemetry.counter("sandbox.calls", status="CRASHED").inc(3)
        telemetry.counter("sandbox.calls", status="RETURNED").inc(9)
        with telemetry.span("campaign"):
            with telemetry.span("injector.function", function="strcpy",
                                vectors=4, calls=12, crashes=3, unsafe=True):
                pass
        path = tmp_path / "t.jsonl"
        telemetry.export_jsonl(path)
        summary = summarize_trace(read_trace(path))
        assert summary.sandbox_calls == {"CRASHED": 3, "RETURNED": 9}
        assert summary.total_sandbox_calls == 12
        assert summary.phases["campaign"].count == 1
        assert summary.functions[0]["function"] == "strcpy"
        text = render_report(summary)
        assert "CRASHED" in text and "strcpy" in text and "campaign" in text
