"""Phase separation: the declaration XML alone must be enough to build
wrappers (the paper's two-phase architecture, Figure 1).

A deployment scenario: phase 1 runs on a build machine and ships only
``declarations.xml``; phase 2 regenerates wrappers anywhere, with no
access to injection reports.
"""

import pytest

from repro.core import HealersPipeline
from repro.core.cache import load_declarations, save_declarations
from repro.declarations import apply_all_manual_edits
from repro.libc import standard_runtime
from repro.memory import INVALID_POINTER, NULL
from repro.wrapper import WrapperLibrary, generate_wrapper_library


@pytest.fixture(scope="module")
def shipped_xml(tmp_path_factory):
    """Phase 1 output, persisted and reloaded cold."""
    path = tmp_path_factory.mktemp("ship") / "declarations.xml"
    hardened = HealersPipeline(
        functions=["asctime", "strcpy", "closedir", "opendir", "abs"]
    ).run()
    save_declarations(hardened.declarations, path)
    return path


class TestPhaseTwoFromXmlOnly:
    def test_wrapper_built_from_reloaded_declarations_protects(self, shipped_xml):
        declarations = load_declarations(shipped_xml)
        wrapper = WrapperLibrary(declarations)
        runtime = standard_runtime()
        for bad in (NULL, INVALID_POINTER):
            outcome = wrapper.call("strcpy", [bad, bad], runtime)
            assert not outcome.robustness_failure

    def test_manual_edits_reapply_after_reload(self, shipped_xml):
        declarations = apply_all_manual_edits(load_declarations(shipped_xml))
        assert declarations["closedir"].arguments[0].robust_type.name == "OPEN_DIR"
        wrapper = WrapperLibrary(declarations)
        runtime = standard_runtime()
        garbage = runtime.space.map_region(72).base
        outcome = wrapper.call("closedir", [garbage], runtime)
        assert outcome.returned and outcome.errno_was_set

    def test_codegen_from_reloaded_declarations(self, shipped_xml):
        declarations = load_declarations(shipped_xml)
        source = generate_wrapper_library(declarations)
        assert "check_R_ARRAY_NULL(a1, 44)" in source  # asctime survived
        assert "int abs (" not in source  # safety attribute survived

    def test_reload_preserves_every_field(self, shipped_xml):
        declarations = load_declarations(shipped_xml)
        asctime = declarations["asctime"]
        assert asctime.version == "GLIBC_2.2"
        assert asctime.errno_class == "consistent"
        assert asctime.error_value == 0
        assert asctime.unsafe

    def test_state_tracking_works_through_reloaded_wrapper(self, shipped_xml):
        declarations = apply_all_manual_edits(load_declarations(shipped_xml))
        wrapper = WrapperLibrary(declarations)
        runtime = standard_runtime()
        path = runtime.space.alloc_cstring("/tmp").base
        dirp = wrapper.call("opendir", [path], runtime).return_value
        assert dirp != NULL
        assert wrapper.call("closedir", [dirp], runtime).return_value == 0
        again = wrapper.call("closedir", [dirp], runtime)
        assert again.returned and again.errno_was_set  # double close blocked
