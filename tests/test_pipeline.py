"""Integration tests: the full HEALERS pipeline end to end."""

import pytest

from repro.core import HealersPipeline, harden
from repro.core.cache import load_declarations, save_declarations
from repro.libc import standard_runtime
from repro.memory import INVALID_POINTER, NULL
from repro.wrapper import WrapperPolicy


@pytest.fixture(scope="module")
def hardened():
    return HealersPipeline(functions=["asctime", "strcpy", "abs", "closedir"]).run()


class TestPipeline:
    def test_declarations_for_every_function(self, hardened):
        assert set(hardened.declarations) == {"asctime", "strcpy", "abs", "closedir"}

    def test_safe_unsafe_partition(self, hardened):
        assert hardened.safe_functions() == ["abs"]
        assert hardened.unsafe_functions() == ["asctime", "closedir", "strcpy"]

    def test_reports_kept(self, hardened):
        assert hardened.reports["asctime"].unsafe
        assert hardened.elapsed_seconds > 0

    def test_semi_auto_differs_where_expected(self, hardened):
        auto = hardened.declarations["closedir"]
        semi = hardened.semi_auto_declarations["closedir"]
        assert auto.arguments[0].robust_type != semi.arguments[0].robust_type
        assert semi.assertions

    def test_wrapper_source_is_generated(self, hardened):
        source = hardened.wrapper_source()
        assert "asctime (" in source
        assert "check_R_ARRAY_NULL" in source

    def test_end_to_end_protection(self, hardened):
        runtime = standard_runtime()
        wrapper = hardened.wrapper()
        for bad in (INVALID_POINTER, runtime.space.map_region(20).base):
            outcome = wrapper.call("asctime", [bad], runtime)
            assert not outcome.robustness_failure

    def test_progress_callback(self):
        seen = []
        HealersPipeline(
            functions=["abs"], progress=lambda name, report: seen.append(name)
        ).run()
        assert seen == ["abs"]

    def test_harden_convenience(self):
        hardened = harden(functions=["abs"])
        assert "abs" in hardened.declarations


class TestCache:
    def test_save_load_round_trip(self, hardened, tmp_path):
        path = tmp_path / "decls.xml"
        save_declarations(hardened.declarations, path)
        loaded = load_declarations(path)
        assert set(loaded) == set(hardened.declarations)
        assert (
            loaded["asctime"].arguments[0].robust_type
            == hardened.declarations["asctime"].arguments[0].robust_type
        )

    def test_load_or_generate_uses_cache(self, hardened, tmp_path):
        from repro.core.cache import load_or_generate

        path = tmp_path / "decls.xml"
        save_declarations(hardened.declarations, path)
        result = load_or_generate(functions=["asctime"], path=path)
        assert result.declarations["asctime"] == hardened.declarations["asctime"]

    def test_load_or_generate_extends_cache(self, hardened, tmp_path):
        from repro.core.cache import load_or_generate

        path = tmp_path / "decls.xml"
        save_declarations({"abs": hardened.declarations["abs"]}, path)
        result = load_or_generate(functions=["abs", "strlen"], path=path)
        assert "strlen" in result.declarations
        assert "strlen" in load_declarations(path)


class TestFullSetAgainstPaper:
    """Assertions on the cached 86-function pipeline output (the
    session fixture regenerates it when missing)."""

    def test_77_of_86_functions_unsafe(self, hardened86):
        from repro.libc.catalog import BALLISTA_SET

        in_set = {
            name: decl
            for name, decl in hardened86.declarations.items()
            if name in {s.name for s in BALLISTA_SET}
        }
        assert len(in_set) == 86
        unsafe = [n for n, d in in_set.items() if d.unsafe]
        assert len(unsafe) == 77  # the paper's headline split

    def test_asctime_figure2_from_cache(self, declarations86):
        assert (
            declarations86["asctime"].arguments[0].robust_type.render()
            == "R_ARRAY_NULL[44]"
        )

    def test_errno_distribution_matches_table1(self, declarations86):
        """Table 1: 8 / 39 / 2 / 37."""
        from collections import Counter
        from repro.libc.catalog import (
            BALLISTA_SET, CONSISTENT, INCONSISTENT, NONE_FOUND, VOID,
        )

        names = {s.name for s in BALLISTA_SET}
        counts = Counter(
            declarations86[n].errno_class for n in names
        )
        assert counts[VOID] == 8
        assert counts[INCONSISTENT] == 2
        assert counts[CONSISTENT] == 39
        assert counts[NONE_FOUND] == 37
