"""Property-based tests (hypothesis) on the core data structures."""

from hypothesis import given, settings, strategies as st

from repro.cdecl import DeclarationParser, typedef_table
from repro.libc import BY_NAME, standard_runtime
from repro.memory import AddressSpace, Heap, Protection, SegmentationFault
from repro.sandbox import Sandbox
from repro.typelattice import Lattice, registry as R
from repro.typelattice.instances import TypeInstance, parse_rendered

# ----------------------------------------------------------------------
# memory
# ----------------------------------------------------------------------


@given(st.binary(min_size=0, max_size=512))
def test_store_load_round_trip(payload):
    space = AddressSpace()
    region = space.map_region(max(len(payload), 1))
    space.store(region.base, payload)
    assert space.load(region.base, len(payload)) == payload


@given(st.binary(min_size=1, max_size=128), st.integers(min_value=1, max_value=64))
def test_any_access_beyond_region_faults(payload, overshoot):
    space = AddressSpace()
    region = space.alloc_bytes(payload)
    try:
        space.load(region.base, len(payload) + overshoot)
        assert False, "expected fault"
    except SegmentationFault as fault:
        assert fault.address == region.end


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_i64_round_trip_any_value(value):
    space = AddressSpace()
    region = space.map_region(8)
    space.store_i64(region.base, value)
    assert space.load_i64(region.base) == value


@given(st.lists(st.integers(min_value=0, max_value=256), min_size=1, max_size=30))
def test_heap_blocks_are_disjoint_and_tracked(sizes):
    heap = Heap(AddressSpace())
    pointers = [heap.malloc(size) for size in sizes]
    live = heap.live_blocks()
    assert len(live) == len(sizes)
    for pointer, size in zip(pointers, sizes):
        block = heap.block_containing(pointer) if size else None
        if size:
            assert block is not None and block.size == size
    spans = sorted((b.base, b.end) for b in live)
    for (_, prev_end), (next_base, _) in zip(spans, spans[1:]):
        assert prev_end <= next_base


@given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127),
               max_size=64))
def test_cstring_round_trip(text):
    space = AddressSpace()
    raw = text.encode()
    region = space.map_region(len(raw) + 1)
    space.write_cstring(region.base, raw)
    assert space.read_cstring(region.base) == raw


# ----------------------------------------------------------------------
# type lattice
# ----------------------------------------------------------------------

_SIZES = st.sets(st.integers(min_value=0, max_value=256), min_size=1, max_size=4)


@settings(max_examples=25, deadline=None)
@given(_SIZES)
def test_lattice_is_a_partial_order(sizes):
    lattice = Lattice.for_sizes(sizes)
    instances = lattice.instances
    sample = instances[:: max(1, len(instances) // 40)]
    for a in sample:
        assert lattice.is_subtype(a, a)
        for b in sample:
            if a != b and lattice.is_subtype(a, b):
                assert not lattice.is_subtype(b, a)


@settings(max_examples=25, deadline=None)
@given(_SIZES)
def test_fundamentals_have_no_subtypes(sizes):
    lattice = Lattice.for_sizes(sizes)
    for fundamental in lattice.fundamentals():
        assert not lattice.subtypes(fundamental)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=1024), st.integers(min_value=0, max_value=1024))
def test_array_size_ordering(small, large):
    small, large = sorted((small, large))
    lattice = Lattice.for_sizes({small, large})
    assert lattice.is_subtype(R.R_ARRAY(large), R.R_ARRAY(small))
    assert lattice.is_subtype(R.RONLY_FIXED(large), R.R_ARRAY(small))
    if small != large:
        assert not lattice.is_subtype(R.R_ARRAY(small), R.R_ARRAY(large))


@given(st.sampled_from([
    "NULL", "UNCONSTRAINED", "R_ARRAY_NULL", "OPEN_FILE", "CSTRING",
]), st.one_of(st.none(), st.integers(min_value=0, max_value=99999)))
def test_type_instance_rendering_round_trip(name, param):
    instance = TypeInstance(name, param)
    parsed_name, parsed_param = parse_rendered(instance.render())
    assert (parsed_name, parsed_param) == (name, param)


# ----------------------------------------------------------------------
# the C prototype parser
# ----------------------------------------------------------------------

_SCALARS = st.sampled_from(
    ["int", "long", "unsigned int", "char", "double", "size_t", "time_t"]
)
_NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)


@st.composite
def _prototypes(draw):
    return_type = draw(_SCALARS)
    name = draw(_NAMES)
    params = []
    for index in range(draw(st.integers(min_value=0, max_value=4))):
        base = draw(_SCALARS)
        stars = "*" * draw(st.integers(min_value=0, max_value=2))
        const = "const " if stars and draw(st.booleans()) else ""
        params.append(f"{const}{base} {stars}p{index}")
    return f"{return_type} {name}({', '.join(params) or 'void'});"


@settings(max_examples=60, deadline=None)
@given(_prototypes())
def test_parser_render_parse_fixpoint(prototype_text):
    parser = DeclarationParser(typedef_table())
    first = parser.parse_prototype(prototype_text)
    second = parser.parse_prototype(first.render())
    assert first == second


# ----------------------------------------------------------------------
# libc models against Python reference semantics
# ----------------------------------------------------------------------

_SAFE_TEXT = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=127), max_size=32
)


@settings(max_examples=40, deadline=None)
@given(_SAFE_TEXT)
def test_strlen_matches_python(text):
    runtime = standard_runtime()
    region = runtime.space.alloc_cstring(text)
    out = Sandbox().call(BY_NAME["strlen"].model, (region.base,), runtime)
    assert out.return_value == len(text.encode())


@settings(max_examples=40, deadline=None)
@given(_SAFE_TEXT, _SAFE_TEXT)
def test_strcmp_sign_matches_python(a, b):
    runtime = standard_runtime()
    ra = runtime.space.alloc_cstring(a)
    rb = runtime.space.alloc_cstring(b)
    out = Sandbox().call(BY_NAME["strcmp"].model, (ra.base, rb.base), runtime)
    expected = (a.encode() > b.encode()) - (a.encode() < b.encode())
    assert out.return_value == expected


@settings(max_examples=40, deadline=None)
@given(_SAFE_TEXT, _SAFE_TEXT)
def test_strstr_matches_python_find(haystack, needle):
    runtime = standard_runtime()
    rh = runtime.space.alloc_cstring(haystack)
    rn = runtime.space.alloc_cstring(needle)
    out = Sandbox().call(BY_NAME["strstr"].model, (rh.base, rn.base), runtime)
    index = haystack.encode().find(needle.encode())
    expected = rh.base + index if index >= 0 else 0
    assert out.return_value == expected


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_abs_matches_python(value):
    runtime = standard_runtime()
    out = Sandbox().call(BY_NAME["abs"].model, (value,), runtime)
    assert out.return_value == abs(value)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=-(10**12), max_value=10**12))
def test_atol_matches_python(value):
    runtime = standard_runtime()
    region = runtime.space.alloc_cstring(str(value))
    out = Sandbox().call(BY_NAME["atol"].model, (region.base,), runtime)
    assert out.return_value == value


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=20))
def test_qsort_sorts_any_int_array(values):
    runtime = standard_runtime()
    region = runtime.space.map_region(max(4 * len(values), 4))
    for index, value in enumerate(values):
        runtime.space.store_i32(region.base + 4 * index, value)

    def compare(ctx, a, b):
        left, right = ctx.mem.load_i32(a), ctx.mem.load_i32(b)
        return (left > right) - (left < right)

    pointer = runtime.register_funcptr(compare)
    out = Sandbox().call(
        BY_NAME["qsort"].model, (region.base, len(values), 4, pointer), runtime
    )
    assert out.returned
    result = [runtime.space.load_i32(region.base + 4 * i) for i in range(len(values))]
    assert result == sorted(values)
