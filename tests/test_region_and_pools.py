"""Fine-grained unit tests: Region internals, Ballista pool builders,
harness thinning, run metrics."""

import pytest

from repro.apps.runner import RunMetrics
from repro.ballista import (
    DIR_POOL,
    FD_POOL,
    FILE_POOL,
    FUNCPTR_POOL,
    INT_POOL,
    POINTER_POOL,
    REAL_POOL,
    SIZE_POOL,
    STRING_POOL,
)
from repro.ballista.harness import BallistaTest, _thin
from repro.ballista.pools import WRITABLE_STRING_POOL
from repro.libc.runtime import standard_runtime
from repro.memory import AccessKind, Protection, Region, SegmentationFault


class TestRegion:
    def test_contains_and_overlaps(self):
        region = Region(base=0x1000, size=0x100)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)
        assert region.overlaps(0x10F0, 0x20)
        assert not region.overlaps(0x1100, 0x10)

    def test_check_access_order_protection_before_bounds(self):
        """A write to a read-only region reports a protection fault at
        the requested address, even past the end — matching MMU
        behaviour where the permission bit is page-level."""
        region = Region(base=0x1000, size=0x10, prot=Protection.READ)
        with pytest.raises(SegmentationFault) as exc:
            region.check_access(0x1000, 4, AccessKind.WRITE)
        assert "protection" in exc.value.reason

    def test_poke_peek_bypass_protection(self):
        region = Region(base=0x1000, size=4, prot=Protection.NONE)
        region.poke(0x1000, b"abcd")
        assert region.peek(0x1000, 4) == b"abcd"
        with pytest.raises(ValueError):
            region.poke(0x1000, b"abcde")
        with pytest.raises(ValueError):
            region.peek(0x0FFF, 1)

    def test_clone_is_deep(self):
        region = Region(base=0x1000, size=4)
        region.write(0x1000, b"orig")
        clone = region.clone()
        clone.write(0x1000, b"copy")
        assert region.read(0x1000, 4) == b"orig"

    def test_data_length_must_match(self):
        with pytest.raises(ValueError):
            Region(base=0, size=4, data=bytearray(2))

    def test_protection_describe(self):
        assert Protection.RW.describe() == "rw"
        assert Protection.READ.describe() == "r-"
        assert Protection.NONE.describe() == "--"


class TestPoolBuilders:
    @pytest.mark.parametrize(
        "pool",
        [STRING_POOL, WRITABLE_STRING_POOL, POINTER_POOL, FILE_POOL, DIR_POOL,
         INT_POOL, FD_POOL, SIZE_POOL, REAL_POOL, FUNCPTR_POOL],
        ids=["string", "wstring", "pointer", "file", "dir", "int", "fd",
             "size", "real", "funcptr"],
    )
    def test_every_value_builds(self, pool):
        runtime = standard_runtime()
        for value in pool:
            built = value.build(runtime)
            assert isinstance(built, (int, float)), value.label

    def test_labels_are_unique_within_pool(self):
        for pool in (STRING_POOL, FILE_POOL, DIR_POOL, INT_POOL):
            labels = [v.label for v in pool]
            assert len(labels) == len(set(labels))

    def test_each_pool_has_benign_and_exceptional(self):
        for pool in (STRING_POOL, WRITABLE_STRING_POOL, FILE_POOL, DIR_POOL,
                     INT_POOL, FD_POOL, SIZE_POOL, REAL_POOL, FUNCPTR_POOL):
            assert any(v.exceptional for v in pool)
            assert any(not v.exceptional for v in pool)


class TestThinning:
    def _tests(self, count):
        return [BallistaTest(f"f{i}", ()) for i in range(count)]

    def test_exact_target(self):
        thinned = _thin(self._tests(100), 73)
        assert len(thinned) == 73

    def test_no_op_when_under_target(self):
        tests = self._tests(10)
        assert _thin(tests, 20) is tests

    def test_thinning_is_spread_not_truncation(self):
        thinned = _thin(self._tests(100), 50)
        names = {t.function for t in thinned}
        assert "f1" in names or "f0" in names
        assert any(t.function == f"f{i}" for t in thinned for i in range(90, 100))


class TestRunMetrics:
    def test_derived_ratios(self):
        metrics = RunMetrics(
            wall_seconds=2.0, libc_calls=100, library_seconds=0.5,
            check_seconds=0.25,
        )
        assert metrics.calls_per_second == 50
        assert metrics.library_fraction == 0.25
        assert metrics.checking_fraction == 0.125

    def test_zero_wall_clock(self):
        metrics = RunMetrics(0.0, 10, 0.0, 0.0)
        assert metrics.calls_per_second == 0.0
        assert metrics.library_fraction == 0.0
