"""The paper's adaptability claim (section 2): "the wrapper generation
process is highly automated and can easily adapt to new library
releases.  As shown in [6], new library releases are sometimes more
robust than previous versions due to bug fixes, and sometimes less
robust due to bugs introduced in new features."

We simulate three releases of ``asctime`` and show the pipeline
re-deriving the right wrapper for each with zero manual work:

* v2.2 — the baseline: reads 44 bytes, rejects NULL with EINVAL;
* v2.3 "bug fix" — also validates the month field (more robust);
* v2.4 "regression" — new feature reads a 52-byte extended struct and
  crashes on NULL again (less robust).
"""

import pytest

from repro.declarations import declaration_from_report
from repro.injector import FaultInjector
from repro.libc.catalog import BY_NAME, FunctionSpec
from repro.libc.errno_codes import EINVAL
from repro.libc.runtime import standard_runtime
from repro.libc.timefns import _format_tm, _read_tm
from repro.libc import common
from repro.memory import NULL
from repro.wrapper import WrapperLibrary


def asctime_v23(ctx, tm):
    """More robust: month range-checked, like a bug-fix release."""
    if tm == NULL:
        ctx.set_errno(EINVAL)
        return NULL
    fields = _read_tm(ctx, tm)
    if not 0 <= fields["mon"] < 12:
        ctx.set_errno(EINVAL)
        return NULL
    common.write_cstring(ctx, ctx.runtime.asctime_buffer, _format_tm(fields)[:25])
    return ctx.runtime.asctime_buffer


def asctime_v24(ctx, tm):
    """Less robust: reads a 52-byte extended structure and no longer
    tolerates NULL (a regression)."""
    fields = _read_tm(ctx, tm)  # NULL now crashes here
    ctx.mem.load(tm + 44, 8)  # the new tm_zone pointer field
    common.write_cstring(ctx, ctx.runtime.asctime_buffer, _format_tm(fields)[:25])
    return ctx.runtime.asctime_buffer


def _spec(model, version):
    base = BY_NAME["asctime"]
    return FunctionSpec(
        name="asctime",
        prototype=base.prototype,
        model=model,
        headers=base.headers,
        version=version,
    )


def _inject(spec):
    return FaultInjector(spec).run()


class TestReleaseAdaptation:
    def test_v22_baseline(self):
        report = _inject(_spec(BY_NAME["asctime"].model, "GLIBC_2.2"))
        assert report.robust_types[0].robust.render() == "R_ARRAY_NULL[44]"

    def test_v23_bugfix_detected(self):
        """The injector notices the stronger release on its own: the
        same wrapper still works, and the robust type is unchanged
        because invalid *content* now errors instead of crashing."""
        report = _inject(_spec(asctime_v23, "GLIBC_2.3"))
        assert report.robust_types[0].robust.render() == "R_ARRAY_NULL[44]"
        assert report.unsafe  # still crashes for bad pointers

    def test_v24_regression_adapts_size_and_null(self):
        """The regression release needs a *different* wrapper: 52
        bytes and no NULL — rediscovered automatically."""
        report = _inject(_spec(asctime_v24, "GLIBC_2.4"))
        robust = report.robust_types[0].robust
        assert robust.render() == "R_ARRAY[52]"

    def test_regenerated_wrapper_protects_each_release(self):
        """End to end: per-release declarations produce per-release
        wrappers, each eliminating that release's crashes."""
        for model, version in (
            (BY_NAME["asctime"].model, "GLIBC_2.2"),
            (asctime_v23, "GLIBC_2.3"),
            (asctime_v24, "GLIBC_2.4"),
        ):
            spec = _spec(model, version)
            declaration = declaration_from_report(_inject(spec), version)
            assert declaration.version == version
            wrapper = WrapperLibrary({"asctime": declaration})
            # The wrapper forwards to *this release's* model.
            original_spec = BY_NAME["asctime"]
            try:
                BY_NAME["asctime"] = spec  # interpose the release
                runtime = standard_runtime()
                probes = [
                    NULL,
                    0xDEAD0000,
                    runtime.space.map_region(20).base,
                    runtime.space.map_region(60).base,
                ]
                for probe in probes:
                    outcome = wrapper.call("asctime", [probe], runtime)
                    assert not outcome.robustness_failure, (version, hex(probe))
            finally:
                BY_NAME["asctime"] = original_spec
