"""Tests for the text renderers."""

from repro.ballista import (
    BallistaReport,
    BallistaTest,
    TestRecord,
    bar,
    render_comparison_table,
    render_figure6,
    render_report,
)


def _report(configuration, crash=2, errno=5, silent=3):
    report = BallistaReport(configuration)
    for status, count in (("crash", crash), ("errno", errno), ("silent", silent)):
        for index in range(count):
            report.records.append(
                TestRecord(BallistaTest(f"fn{index % 3}", ()), status)
            )
    return report


class TestBar:
    def test_full_and_empty(self):
        assert bar(100, width=10) == "##########"
        assert bar(0, width=10) == ".........."

    def test_rounding_and_clamping(self):
        assert bar(50, width=10) == "#####....."
        assert bar(150, width=10) == "##########"
        assert bar(-5, width=10) == ".........."


class TestRenderReport:
    def test_contains_all_categories(self):
        text = render_report(_report("unwrapped"))
        for label in ("Errno set", "Silent", "Crash"):
            assert label in text
        assert "unwrapped (10 tests)" in text
        assert "crashing functions: 2" in text

    def test_percentages(self):
        text = render_report(_report("x", crash=5, errno=5, silent=0))
        assert " 50.00%" in text

    def test_empty_report(self):
        text = render_report(BallistaReport("empty"))
        assert "0 tests" in text


class TestRenderFigure6:
    def test_progression_line(self):
        reports = [
            _report("unwrapped", crash=5, errno=5, silent=0),
            _report("wrapped", crash=0, errno=10, silent=0),
        ]
        text = render_figure6(reports)
        assert "crash rate progression: 50.00% -> 0.00%" in text
        assert text.count("Errno set") == 2


class TestComparisonTable:
    def test_measured_and_paper_rows_interleave(self):
        rows = [{"configuration": "unwrapped", "crash_pct": 57.8}]
        paper = [{"configuration": "unwrapped", "crash_pct": 24.51}]
        text = render_comparison_table(rows, paper, ["crash_pct"])
        assert "unwrapped (measured)" in text
        assert "unwrapped (paper)" in text
        assert "57.8" in text and "24.51" in text
