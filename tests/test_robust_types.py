"""Tests for robust argument type computation (paper section 4.3)."""

import pytest

from repro.typelattice import (
    AUTO_CHECKABLE,
    Lattice,
    Observation,
    SEMI_AUTO_CHECKABLE,
    TestResult,
    VectorObservation,
    compute_robust_type,
    compute_robust_vector,
    registry as R,
)

S = TestResult.SUCCESS
E = TestResult.ERROR
F = TestResult.FAILURE


def obs(*pairs):
    return [Observation(fundamental, result) for fundamental, result in pairs]


class TestPaperExamples:
    def test_asctime_example(self):
        """Section 4.3: RONLY_FIXED[s>=44], RW_FIXED[s>=44] and NULL
        succeed, everything else fails -> R_ARRAY_NULL[44]."""
        lattice = Lattice.for_sizes({0, 8, 20, 44})
        observations = obs(
            (R.RONLY_FIXED(0), F), (R.RONLY_FIXED(8), F), (R.RONLY_FIXED(20), F),
            (R.RW_FIXED(0), F), (R.RW_FIXED(8), F), (R.RW_FIXED(20), F),
            (R.RONLY_FIXED(44), S), (R.RW_FIXED(44), S), (R.NULL, S),
            (R.WONLY_FIXED(44), F), (R.INVALID, F),
        )
        result = compute_robust_type(observations, lattice=lattice)
        assert result.robust == R.R_ARRAY_NULL(44)
        assert result.safe
        assert result.crash_free

    def test_asctime_with_error_returning_null(self):
        """Figure 2's actual declaration: NULL makes asctime return an
        error (EINVAL); under the atomic-function assumption the
        robust type still includes NULL."""
        lattice = Lattice.for_sizes({0, 44})
        observations = obs(
            (R.RONLY_FIXED(0), F), (R.RW_FIXED(0), F),
            (R.RONLY_FIXED(44), S), (R.RW_FIXED(44), S),
            (R.NULL, E), (R.INVALID, F), (R.WONLY_FIXED(44), F),
        )
        result = compute_robust_type(observations, lattice=lattice)
        assert result.robust == R.R_ARRAY_NULL(44)

    def test_tolerated_invalid_pointer(self):
        """Section 4.3's -1 example: an implementation that *errors*
        (not crashes) on pointer -1.  The robust type need not include
        -1 thanks to atomicity, and no safe type exists."""
        lattice = Lattice.for_sizes({0, 44})
        observations = obs(
            (R.RONLY_FIXED(44), S), (R.RW_FIXED(44), S), (R.NULL, S),
            (R.INVALID, E),  # returns an error code instead of crashing
            (R.RONLY_FIXED(0), F), (R.WONLY_FIXED(44), F),
        )
        result = compute_robust_type(observations, lattice=lattice)
        assert result.robust == R.R_ARRAY_NULL(44)
        assert not result.safe  # INVALID is outside yet did not crash

    def test_conservative_mode_includes_error_returns(self):
        """The paper's stricter variant anchors on every returning
        test case; INVALID then forces UNCONSTRAINED."""
        lattice = Lattice.for_sizes({0, 44})
        observations = obs(
            (R.RONLY_FIXED(44), S), (R.NULL, S),
            (R.INVALID, E), (R.RONLY_FIXED(0), F),
        )
        result = compute_robust_type(
            observations, lattice=lattice, conservative=True
        )
        assert result.robust == R.UNCONSTRAINED


class TestSelectionRules:
    def test_never_crashing_argument_is_unconstrained(self):
        lattice = Lattice.for_sizes({8})
        observations = obs(
            (R.RONLY_FIXED(8), S), (R.NULL, S), (R.INVALID, S), (R.RW_FIXED(8), S)
        )
        result = compute_robust_type(observations, lattice=lattice)
        assert result.robust == R.UNCONSTRAINED
        assert result.safe

    def test_write_only_access_pattern(self):
        """cfsetispeed-style: write access suffices."""
        lattice = Lattice.for_sizes({0, 4, 52, 16384})
        observations = obs(
            (R.WONLY_FIXED(52), S), (R.RW_FIXED(52), S),
            (R.WONLY_FIXED(0), F), (R.WONLY_FIXED(4), F),
            (R.RW_FIXED(0), F), (R.RW_FIXED(4), F),
            (R.RONLY_FIXED(16384), F),  # read-only never works
            (R.NULL, F), (R.INVALID, F),
        )
        result = compute_robust_type(observations, lattice=lattice)
        assert result.robust == R.W_ARRAY(52)

    def test_read_write_access_pattern(self):
        """cfsetospeed-style: both accesses required."""
        lattice = Lattice.for_sizes({0, 56, 16384})
        observations = obs(
            (R.RW_FIXED(56), S),
            (R.RW_FIXED(0), F),
            (R.RONLY_FIXED(16384), F),
            (R.WONLY_FIXED(16384), F),
            (R.NULL, F), (R.INVALID, F),
        )
        result = compute_robust_type(observations, lattice=lattice)
        assert result.robust == R.RW_ARRAY(56)

    def test_mode_string_inference(self):
        lattice = Lattice.for_sizes({1})
        observations = obs(
            (R.VALID_MODE, S),
            (R.STRING_RO, F), (R.STRING_RW, F), (R.VALID_FORMAT, F),
            (R.NULL, F), (R.INVALID, F),
        )
        result = compute_robust_type(observations, lattice=lattice)
        assert result.robust == R.MODE_STRING

    def test_mixed_fundamental_minimizes_contained_crashes(self):
        """A fundamental with both successes and crashes cannot be
        excluded; the computation then minimizes contained crashing
        fundamentals instead of giving up."""
        lattice = Lattice.for_sizes({8})
        observations = obs(
            (R.STRING_RO, S), (R.STRING_RO, F),  # mixed
            (R.NULL, F), (R.INVALID, F),
        )
        result = compute_robust_type(observations, lattice=lattice)
        # must contain STRING_RO (a success) but not NULL/INVALID.
        assert result.robust != R.UNCONSTRAINED
        assert lattice.is_subtype(R.STRING_RO, result.robust)
        assert not lattice.is_subtype(R.NULL, result.robust)
        assert not result.crash_free

    def test_empty_success_falls_back_to_error_anchor(self):
        lattice = Lattice.for_sizes({8})
        observations = obs((R.NULL, E), (R.INVALID, F), (R.RONLY_FIXED(8), F))
        result = compute_robust_type(observations, lattice=lattice)
        assert lattice.is_subtype(R.NULL, result.robust)
        assert not lattice.is_subtype(R.INVALID, result.robust)

    def test_no_observations_rejected(self):
        with pytest.raises(ValueError):
            compute_robust_type([])


class TestCheckability:
    def test_open_dir_requires_semi_auto(self):
        """Section 5.2/6: OPEN_DIR has no automatic checking function;
        full-auto weakens to accessible memory, the manual assertions
        enable the precise type."""
        lattice = Lattice.for_sizes({72})
        observations = obs(
            (R.OPEN_DIR, S),
            (R.CORRUPT_DIR, F), (R.RW_FIXED(72), F),
            (R.NULL, F), (R.INVALID, F),
        )
        auto = compute_robust_type(
            observations, lattice=lattice, checkable=lambda t: t.name in AUTO_CHECKABLE
        )
        semi = compute_robust_type(
            observations,
            lattice=lattice,
            checkable=lambda t: t.name in SEMI_AUTO_CHECKABLE,
        )
        assert auto.robust.name in ("R_ARRAY", "W_ARRAY", "RW_ARRAY")
        assert not auto.crash_free
        assert auto.ideal == R.OPEN_DIR
        assert semi.robust == R.OPEN_DIR
        assert semi.crash_free

    def test_ideal_reported_alongside_checkable(self):
        lattice = Lattice.for_sizes({72})
        observations = obs(
            (R.OPEN_DIR, S), (R.NULL, F), (R.INVALID, F), (R.RW_FIXED(72), F)
        )
        result = compute_robust_type(
            observations, lattice=lattice, checkable=lambda t: t.name in AUTO_CHECKABLE
        )
        assert result.ideal == R.OPEN_DIR
        assert result.robust != result.ideal


class TestVectors:
    def test_componentwise_attribution(self):
        """Crashes only count against the blamed argument."""
        lattice = Lattice.for_sizes({8, 16})
        vectors = [
            VectorObservation((R.RW_FIXED(16), R.STRING_RO), S, None),
            VectorObservation((R.RW_FIXED(16), R.NULL), F, 1),
            VectorObservation((R.NULL, R.STRING_RO), F, 0),
            VectorObservation((R.RW_FIXED(16), R.INVALID), F, 1),
        ]
        results = compute_robust_vector(vectors, lattices=[lattice, lattice])
        # arg0: RW_FIXED succeeded, NULL crashed (blamed)
        assert not lattice.is_subtype(R.NULL, results[0].robust)
        assert lattice.is_subtype(R.RW_FIXED(16), results[0].robust)
        # arg1: STRING_RO succeeded, NULL/INVALID crashed (blamed)
        assert not lattice.is_subtype(R.NULL, results[1].robust)
        assert lattice.is_subtype(R.STRING_RO, results[1].robust)

    def test_unattributed_crash_blames_never_returning_fundamentals(self):
        """Blame-by-elimination: a wild-pointer crash with no owner is
        charged to argument positions whose fundamental never produced
        a returning call (the fopen bad-mode-content case)."""
        lattice = Lattice.for_sizes({1})
        vectors = [
            VectorObservation((R.STRING_RO, R.VALID_MODE), S, None),
            VectorObservation((R.STRING_RO, R.STRING_RO), F, None),  # mode crash
            VectorObservation((R.STRING_RW, R.VALID_MODE), S, None),
        ]
        results = compute_robust_vector(vectors, lattices=[lattice, lattice])
        assert results[1].robust == R.MODE_STRING
        # arg0's STRING_RO returned elsewhere, so it is not blamed.
        assert lattice.is_subtype(R.STRING_RO, results[0].robust)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_robust_vector(
                [
                    VectorObservation((R.NULL,), S, None),
                    VectorObservation((R.NULL, R.NULL), S, None),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_robust_vector([])


class TestTypeVectorOrder:
    def test_pointwise_order(self):
        from repro.typelattice import TypeVectorOrder

        lattice = Lattice.for_sizes({8, 16})
        order = TypeVectorOrder([lattice, lattice])
        sub = (R.RW_FIXED(16), R.NULL)
        sup = (R.RW_ARRAY(8), R.R_ARRAY_NULL(8))
        assert order.is_subvector(sub, sup)
        assert order.is_strict_subvector(sub, sup)
        assert not order.is_subvector(sup, sub)
        assert order.contains_vector(sup, sub)

    def test_mixed_directions_incomparable(self):
        from repro.typelattice import TypeVectorOrder

        lattice = Lattice.for_sizes({8})
        order = TypeVectorOrder([lattice, lattice])
        a = (R.R_ARRAY(8), R.NULL)
        b = (R.NULL, R.R_ARRAY(8))
        assert not order.is_subvector(a, b)
        assert not order.is_subvector(b, a)
