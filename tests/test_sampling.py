"""Tests for adaptive statistical vector sampling (`--sampling`).

Covers the spec grammar and fingerprint, the deterministic draw
primitives, sampled-vs-exhaustive golden equivalence over a
20-function catalog slice, digest anti-aliasing, outcome-store
round-trips of sampling evidence, fleet wire transport, and
resume-after-kill of a sampled campaign.
"""

import json

import pytest

from repro.campaign import CampaignConfig, CampaignRunner, load_manifest
from repro.campaign.digest import outcome_digest
from repro.campaign.store import report_from_payload, report_to_payload
from repro.fleet import ShardSpec, build_shards, fleet_fingerprints
from repro.injector import (
    SAMPLING_VERSION,
    FaultInjector,
    SamplingPolicy,
    SamplingSpecError,
    VectorSampler,
    canonical_sampling_spec,
    resolve_sampling,
    sampling_fingerprint,
    stride_sample,
)
from repro.injector.plan import clear_plan_cache, compile_plan, plan_shape
from repro.injector.sampling import draw_order, schedule_seed
from repro.libc.catalog import BY_NAME

#: Cheap, shape-diverse catalog slice for the golden equivalence test:
#: scalars, strings, arrays, FILE*, adaptive-state generators.
GOLDEN_FUNCTIONS = [
    "abs", "asctime", "atoi", "fclose", "fopen", "fputs", "getenv",
    "gmtime", "isalpha", "labs", "memset", "qsort", "rewind", "sprintf",
    "strcat", "strchr", "strcpy", "strlen", "strtok", "tolower",
]


# ----------------------------------------------------------------------
# spec grammar + fingerprint
# ----------------------------------------------------------------------


class TestSamplingSpec:
    def test_none_means_exhaustive(self):
        assert canonical_sampling_spec(None) is None
        assert canonical_sampling_spec("") is None
        assert resolve_sampling(None) is None
        assert resolve_sampling("  ") is None

    def test_default_spec_is_canonical_and_stable(self):
        spec = canonical_sampling_spec("adaptive")
        assert spec.startswith("adaptive:confidence=0.99")
        assert canonical_sampling_spec(spec) == spec

    def test_keys_override_and_later_wins(self):
        spec = canonical_sampling_spec("adaptive:confidence=0.9:confidence=0.95")
        assert ":confidence=0.95:" in spec

    @pytest.mark.parametrize("bad", [
        "unknown_mode", "adaptive:confidence=2.0", "adaptive:confidence=x",
        "adaptive:nope=1", "adaptive:min_samples=-1", "adaptive:check_every=0",
        "adaptive:seed=-3", "adaptive:epsilon=0",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(SamplingSpecError):
            canonical_sampling_spec(bad)

    def test_fingerprint_covers_policy_and_version(self):
        policy = resolve_sampling("adaptive")
        assert isinstance(policy, SamplingPolicy)
        fp = sampling_fingerprint(policy)
        assert fp["version"] == SAMPLING_VERSION
        assert fp["mode"] == policy.mode
        assert fp["confidence"] == policy.confidence
        assert sampling_fingerprint("adaptive:confidence=0.95") != fp
        with pytest.raises(SamplingSpecError):
            sampling_fingerprint(None)


# ----------------------------------------------------------------------
# deterministic draws
# ----------------------------------------------------------------------


class TestDeterministicDraws:
    def test_stride_sample_matches_historical_semantics(self):
        pool = list(range(100))
        assert stride_sample(pool, 24) == [i * 4 for i in range(24)]
        assert stride_sample(pool, 200) == pool
        assert stride_sample([], 5) == []

    def test_scenario_sample_delegates_identically(self):
        from repro.faults.model import SCENARIO_VECTOR_CAP, scenario_sample

        pool = list(range(97))
        assert scenario_sample(pool) == stride_sample(pool, SCENARIO_VECTOR_CAP)

    def test_schedule_seed_is_a_pure_function(self):
        a = schedule_seed(0, "digest-a", "strcpy")
        assert a == schedule_seed(0, "digest-a", "strcpy")
        assert a != schedule_seed(1, "digest-a", "strcpy")
        assert a != schedule_seed(0, "digest-b", "strcpy")
        assert a != schedule_seed(0, "digest-a", "memcpy")

    def test_draw_order_is_a_permutation(self):
        order = draw_order(100, 12345)
        assert sorted(order) == list(range(100))
        assert order == draw_order(100, 12345)
        assert order != draw_order(100, 54321)


# ----------------------------------------------------------------------
# golden equivalence: sampled robust types == exhaustive robust types
# ----------------------------------------------------------------------


class TestGoldenEquivalence:
    def test_twenty_function_catalog_slice(self):
        for name in GOLDEN_FUNCTIONS:
            clear_plan_cache()
            exhaustive = FaultInjector(BY_NAME[name]).run()
            clear_plan_cache()
            sampled = FaultInjector(BY_NAME[name], sampling="adaptive").run()
            assert (
                [r.robust.render() for r in exhaustive.robust_types]
                == [r.robust.render() for r in sampled.robust_types]
            ), name
            assert exhaustive.sampling is None
            assert sampled.sampling is not None
            assert sampled.sampling.mode in (
                "sampled", "exhaustive", "escalated"
            )
            assert sampled.sampling.vectors_total == exhaustive.vectors_run

    def test_sampling_is_deterministic(self):
        clear_plan_cache()
        first = FaultInjector(BY_NAME["strcpy"], sampling="adaptive").run()
        clear_plan_cache()
        second = FaultInjector(BY_NAME["strcpy"], sampling="adaptive").run()
        assert first == second

    def test_small_cross_products_fall_back_to_exhaustive(self):
        report = FaultInjector(BY_NAME["abs"], sampling="adaptive").run()
        assert report.sampling.mode == "exhaustive"
        assert report.sampling.vectors_run == report.sampling.vectors_total
        assert report.sampling.vectors_skipped == 0

    def test_seed_changes_the_draw_schedule(self):
        policy_a = resolve_sampling("adaptive")
        policy_b = resolve_sampling("adaptive:seed=7")
        seed_a = schedule_seed(policy_a.seed, "plan-digest", "strcpy")
        seed_b = schedule_seed(policy_b.seed, "plan-digest", "strcpy")
        assert draw_order(24, seed_a) != draw_order(24, seed_b)


# ----------------------------------------------------------------------
# digest anti-aliasing
# ----------------------------------------------------------------------


class TestDigestAntiAliasing:
    def test_exhaustive_digest_is_byte_stable_when_unarmed(self):
        spec = BY_NAME["strcpy"]
        assert outcome_digest(spec) == outcome_digest(spec, sampling=None)

    def test_sampled_never_aliases_exhaustive_or_other_policies(self):
        spec = BY_NAME["strcpy"]
        plain = outcome_digest(spec)
        sampled = outcome_digest(spec, sampling="adaptive")
        tighter = outcome_digest(spec, sampling="adaptive:confidence=0.999")
        assert len({plain, sampled, tighter}) == 3

    def test_equivalent_specs_share_a_digest(self):
        spec = BY_NAME["strcpy"]
        assert outcome_digest(spec, sampling="adaptive") == outcome_digest(
            spec, sampling=canonical_sampling_spec("adaptive")
        )


# ----------------------------------------------------------------------
# store round-trip
# ----------------------------------------------------------------------


class TestStoreRoundTrip:
    def test_sampled_report_round_trips_with_evidence(self):
        spec = BY_NAME["strcpy"]
        report = FaultInjector(spec, sampling="adaptive").run()
        assert report.sampling is not None
        payload = json.loads(
            json.dumps(report_to_payload(report, spec.prototype))
        )
        assert report_from_payload(payload) == report

    def test_exhaustive_payload_has_no_sampling_key(self):
        spec = BY_NAME["abs"]
        report = FaultInjector(spec).run()
        payload = report_to_payload(report, spec.prototype)
        assert "sampling" not in payload
        assert report_from_payload(payload).sampling is None


# ----------------------------------------------------------------------
# fleet wire
# ----------------------------------------------------------------------


class TestFleetWire:
    def test_shard_round_trips_sampling(self):
        shard = ShardSpec.build(
            shard_id="camp/0", campaign="camp", seed=1, max_vectors=24,
            functions=["strcpy"], digests=["d-strcpy"],
            sampling="adaptive:confidence=0.99",
        )
        wired = ShardSpec.decode(json.loads(json.dumps(shard.encode())))
        assert wired == shard
        assert wired.sampling == "adaptive:confidence=0.99"

    def test_sampling_changes_the_shard_digest(self):
        plain = ShardSpec.build(
            shard_id="camp/0", campaign="camp", seed=1, max_vectors=24,
            functions=["strcpy"], digests=["d"],
        )
        armed = ShardSpec.build(
            shard_id="camp/0", campaign="camp", seed=1, max_vectors=24,
            functions=["strcpy"], digests=["d"], sampling="adaptive",
        )
        assert plain.sampling is None
        assert plain.digest() != armed.digest()

    def test_fleet_fingerprints_pin_sampling_version(self):
        assert fleet_fingerprints()["sampling"] == SAMPLING_VERSION

    def test_build_shards_stamps_sampling(self):
        shards = build_shards(
            ["strcpy", "memcpy"], {"strcpy": "d1", "memcpy": "d2"}, 2,
            campaign="camp", seed=3, max_vectors=24, sampling="adaptive",
        )
        assert shards and all(s.sampling == "adaptive" for s in shards)


# ----------------------------------------------------------------------
# sampled campaigns: identity threading + resume-after-kill
# ----------------------------------------------------------------------


class TestSampledCampaigns:
    FNS = ["abs", "labs", "strlen"]

    def test_config_canonicalizes_and_manifest_records(self, tmp_path):
        config = CampaignConfig(cache_dir=tmp_path, sampling="adaptive")
        runner = CampaignRunner(self.FNS, config)
        canonical = canonical_sampling_spec("adaptive")
        # The runner eagerly canonicalizes the frozen config so every
        # downstream consumer (digests, manifest, shards) agrees.
        assert runner.config.sampling == canonical
        result = runner.run()
        assert result.failed == {}
        assert result.sampling == canonical
        manifest = load_manifest(tmp_path)
        assert manifest["sampling"] == canonical

    def test_resume_after_simulated_kill(self, tmp_path):
        baseline = CampaignRunner(
            self.FNS, CampaignConfig(sampling="adaptive")
        ).run()
        interrupted = CampaignRunner(
            self.FNS[:2], CampaignConfig(cache_dir=tmp_path, sampling="adaptive")
        ).run()
        assert interrupted.ran == 2

        resumed = CampaignRunner(
            self.FNS,
            CampaignConfig(cache_dir=tmp_path, resume=True, sampling="adaptive"),
        ).run()
        statuses = {n: o.status for n, o in resumed.outcomes.items()}
        assert statuses == {"abs": "cached", "labs": "cached", "strlen": "ran"}
        assert resumed.reports == baseline.reports
        for report in resumed.reports.values():
            assert report.sampling is not None

    def test_sampled_cache_never_serves_an_exhaustive_campaign(self, tmp_path):
        CampaignRunner(
            self.FNS, CampaignConfig(cache_dir=tmp_path, sampling="adaptive")
        ).run()
        plain = CampaignRunner(
            self.FNS, CampaignConfig(cache_dir=tmp_path)
        ).run()
        assert plain.cache_hits == 0
        assert all(r.sampling is None for r in plain.reports.values())


# ----------------------------------------------------------------------
# sampler unit behavior
# ----------------------------------------------------------------------


class TestVectorSampler:
    def test_exhaustive_below_threshold(self):
        injector = FaultInjector(BY_NAME["abs"])
        templates = [
            [t for g in gens for t in g.templates()]
            for gens in injector.generators
        ]
        plan = compile_plan(plan_shape(templates), injector.max_vectors)
        policy = resolve_sampling("adaptive")
        sampler = VectorSampler(policy, plan, "abs")
        assert sampler.exhaustive

    def test_ledger_series_key_separates_sampled_runs(self, tmp_path):
        from repro.obs.ledger import Ledger

        result = CampaignRunner(
            ["abs"], CampaignConfig(sampling="adaptive")
        ).run()
        plain = CampaignRunner(["abs"], CampaignConfig()).run()
        ledger = Ledger(tmp_path / "ledger.sqlite")
        ledger.ingest_campaign(result)
        ledger.ingest_campaign(plain)
        series = {bench for bench, _metric in ledger.bench_series()}
        sampled_series = {s for s in series if ".sampled-" in s}
        assert sampled_series, series
        assert series - sampled_series, series


class TestFlattenMetricsHonesty:
    def test_baseline_only_rows_never_become_series(self):
        from repro.obs.ledger import flatten_metrics

        payload = {
            "modes": [
                {"fleet_mode": "serial", "seconds": 2.0, "speedup": 1.0},
                {"fleet_mode": "threads", "seconds": 1.5, "speedup": 1.3,
                 "baseline_only": True},
            ],
            "functions": 20,
        }
        flat = flatten_metrics(payload)
        assert "modes.serial.seconds" in flat
        assert not any(k.startswith("modes.threads") for k in flat)
        assert flat["functions"] == 20.0
