"""Unit tests for the sandbox (child-process semantics)."""

import pytest

from repro.libc.runtime import LibcRuntime
from repro.memory import SegmentationFault, AccessKind
from repro.sandbox import Abort, CallStatus, Hang, Sandbox


def returns_42(ctx):
    return 42


def sets_errno(ctx):
    ctx.set_errno(22)
    return -1


def crashes(ctx):
    ctx.mem.load(0, 1)


def hangs(ctx):
    while True:
        ctx.step(1000)


def aborts(ctx):
    raise Abort("assertion failed")


def stores(ctx, address, payload_byte):
    ctx.mem.store(address, bytes([payload_byte]))
    return 0


class TestOutcomes:
    def test_plain_return(self):
        outcome = Sandbox().call(returns_42, (), LibcRuntime())
        assert outcome.status is CallStatus.RETURNED
        assert outcome.return_value == 42
        assert not outcome.errno_was_set

    def test_errno_reported_only_when_set(self):
        runtime = LibcRuntime()
        outcome = Sandbox().call(sets_errno, (), runtime)
        assert outcome.errno == 22
        again = Sandbox().call(returns_42, (), runtime)
        # errno persists in the runtime but was not set by this call.
        assert not again.errno_was_set

    def test_crash_contained_with_fault_address(self):
        outcome = Sandbox().call(crashes, (), LibcRuntime())
        assert outcome.status is CallStatus.CRASHED
        assert outcome.fault_address == 0
        assert outcome.robustness_failure

    def test_hang_detected_by_step_budget(self):
        outcome = Sandbox(step_budget=10_000).call(hangs, (), LibcRuntime())
        assert outcome.status is CallStatus.HUNG

    def test_abort_contained(self):
        outcome = Sandbox().call(aborts, (), LibcRuntime())
        assert outcome.status is CallStatus.ABORTED
        assert "assertion failed" in outcome.detail

    def test_programming_errors_propagate(self):
        def broken(ctx):
            raise TypeError("harness bug")

        with pytest.raises(TypeError):
            Sandbox().call(broken, (), LibcRuntime())

    def test_call_counter(self):
        sandbox = Sandbox()
        runtime = LibcRuntime()
        for _ in range(3):
            sandbox.call(returns_42, (), runtime)
        assert sandbox.call_count == 3


class TestIsolation:
    def test_isolated_calls_do_not_mutate_runtime(self):
        runtime = LibcRuntime()
        region = runtime.space.map_region(8)
        Sandbox(isolate=True).call(stores, (region.base, 0x41), runtime)
        assert runtime.space.load(region.base, 1) == b"\x00"

    def test_non_isolated_calls_do_mutate(self):
        runtime = LibcRuntime()
        region = runtime.space.map_region(8)
        Sandbox(isolate=False).call(stores, (region.base, 0x41), runtime)
        assert runtime.space.load(region.base, 1) == b"A"

    def test_crash_in_isolated_child_leaves_parent_usable(self):
        runtime = LibcRuntime()
        sandbox = Sandbox(isolate=True)
        assert sandbox.call(crashes, (), runtime).crashed
        assert sandbox.call(returns_42, (), runtime).return_value == 42


class TestOutcomeDescribe:
    def test_describe_formats(self):
        runtime = LibcRuntime()
        assert "returned 42" in Sandbox().call(returns_42, (), runtime).describe()
        assert "crashed at 0x0" in Sandbox().call(crashes, (), runtime).describe()

    def test_fault_carries_access_kind(self):
        outcome = Sandbox().call(crashes, (), LibcRuntime())
        assert outcome.fault.access is AccessKind.READ


class TestRuntimeFork:
    def test_fork_copies_libc_statics(self):
        runtime = LibcRuntime()
        runtime.strtok_state = 1234
        clone = runtime.fork()
        assert clone.strtok_state == 1234
        clone.strtok_state = 5678
        assert runtime.strtok_state == 1234

    def test_fork_preserves_static_buffers(self):
        runtime = LibcRuntime()
        runtime.space.write_cstring(runtime.asctime_buffer, b"test")
        clone = runtime.fork()
        assert clone.space.read_cstring(clone.asctime_buffer) == b"test"
        assert clone.asctime_buffer == runtime.asctime_buffer

    def test_fork_copies_heap_table(self):
        runtime = LibcRuntime()
        pointer = runtime.heap.malloc(32)
        clone = runtime.fork()
        assert clone.heap.block_containing(pointer) is not None
        clone.heap.free(pointer)
        assert runtime.heap.block_containing(pointer) is not None

    def test_fork_copies_kernel_descriptors(self):
        from repro.libc.kernel import READ
        from repro.libc.runtime import standard_runtime

        runtime = standard_runtime()
        fd = runtime.kernel.open("/tmp/input.txt", READ)
        clone = runtime.fork()
        assert clone.kernel.read(fd, 5) == b"hello"
        # offset advanced only in the clone
        assert runtime.kernel.read(fd, 5) == b"hello"


class TestStats:
    def test_per_status_counts(self):
        sandbox = Sandbox(step_budget=10_000)
        sandbox.call(returns_42, (), LibcRuntime())
        sandbox.call(returns_42, (), LibcRuntime())
        sandbox.call(crashes, (), LibcRuntime())
        sandbox.call(hangs, (), LibcRuntime())
        sandbox.call(aborts, (), LibcRuntime())
        assert sandbox.stats == {
            "RETURNED": 2,
            "CRASHED": 1,
            "HUNG": 1,
            "ABORTED": 1,
        }
        assert sandbox.call_count == 5

    def test_stats_snapshot_is_a_copy(self):
        sandbox = Sandbox()
        sandbox.call(returns_42, (), LibcRuntime())
        snapshot = sandbox.stats
        snapshot["RETURNED"] = 99
        assert sandbox.stats == {"RETURNED": 1}

    def test_stats_feed_telemetry_registry(self):
        from repro.obs import Telemetry

        telemetry = Telemetry()
        sandbox = Sandbox(telemetry=telemetry)
        sandbox.call(returns_42, (), LibcRuntime())
        sandbox.call(crashes, (), LibcRuntime())
        registry = telemetry.registry
        assert registry.value("sandbox.calls", status="RETURNED") == 1
        assert registry.value("sandbox.calls", status="CRASHED") == 1
        names = [r["name"] for r in telemetry.tracer.records()]
        assert names == ["sandbox.call", "sandbox.call"]
