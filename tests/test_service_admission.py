"""Admission control and single-flight deduplication, in isolation.

The token bucket and controller use an injectable clock so every case
is deterministic; the single-flight tests run real asyncio tasks."""

import asyncio

import pytest

from repro.service.admission import AdmissionController, Overloaded, TokenBucket
from repro.service.singleflight import SingleFlight


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_starvation(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        wait = bucket.try_take()
        assert wait == pytest.approx(0.1)

    def test_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
        assert bucket.try_take() is None
        assert bucket.try_take() is not None
        clock.advance(0.1)
        assert bucket.try_take() is None

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60)
        assert bucket.try_take() is None
        assert bucket.try_take() is None
        assert bucket.try_take() is not None

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate=0.0, clock=FakeClock())
        assert all(bucket.try_take() is None for _ in range(1000))

    def test_bad_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_capacity_gate(self):
        controller = AdmissionController(capacity=2, clock=FakeClock())
        controller.acquire()
        controller.acquire()
        with pytest.raises(Overloaded) as err:
            controller.acquire()
        assert err.value.retry_after_ms > 0
        controller.release()
        controller.acquire()  # freed slot admits again

    def test_rate_gate_carries_exact_wait(self):
        clock = FakeClock()
        controller = AdmissionController(
            capacity=100, rate=2.0, burst=1.0, clock=clock
        )
        controller.acquire()
        with pytest.raises(Overloaded) as err:
            controller.acquire()
        assert err.value.retry_after_ms == 500  # 1 token at 2/s

    def test_snapshot_counts(self):
        controller = AdmissionController(capacity=1, clock=FakeClock())
        controller.acquire()
        for _ in range(3):
            with pytest.raises(Overloaded):
                controller.acquire()
        snapshot = controller.snapshot()
        assert snapshot["inflight"] == 1
        assert snapshot["peak_inflight"] == 1
        assert snapshot["admitted"] == 1
        assert snapshot["rejected_capacity"] == 3
        assert snapshot["rejected_rate"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)


class TestSingleFlight:
    def test_concurrent_callers_share_one_computation(self):
        async def scenario():
            flight = SingleFlight()
            runs = []

            async def work():
                runs.append(1)
                await asyncio.sleep(0.02)
                return "result"

            results = await asyncio.gather(
                *(flight.run("key", work) for _ in range(16))
            )
            return runs, results, flight.stats()

        runs, results, stats = asyncio.run(scenario())
        assert len(runs) == 1
        assert results == ["result"] * 16
        assert stats["leaders"] == 1
        assert stats["shared"] == 15
        assert stats["inflight"] == 0

    def test_distinct_keys_do_not_collapse(self):
        async def scenario():
            flight = SingleFlight()
            runs = []

            def work_for(key):
                async def work():
                    runs.append(key)
                    await asyncio.sleep(0.01)
                    return key

                return work

            results = await asyncio.gather(
                flight.run("a", work_for("a")), flight.run("b", work_for("b"))
            )
            return runs, results

        runs, results = asyncio.run(scenario())
        assert sorted(runs) == ["a", "b"]
        assert results == ["a", "b"]

    def test_failure_propagates_and_is_not_cached(self):
        async def scenario():
            flight = SingleFlight()
            attempts = []

            async def failing():
                attempts.append(1)
                await asyncio.sleep(0.01)
                raise RuntimeError("boom")

            results = await asyncio.gather(
                *(flight.run("k", failing) for _ in range(4)),
                return_exceptions=True,
            )
            assert all(isinstance(r, RuntimeError) for r in results)
            assert len(attempts) == 1
            # The failed flight is gone: the next call starts fresh.
            with pytest.raises(RuntimeError):
                await flight.run("k", failing)
            return attempts

        attempts = asyncio.run(scenario())
        assert len(attempts) == 2

    def test_cancelled_waiter_does_not_cancel_the_flight(self):
        async def scenario():
            flight = SingleFlight()
            finished = []

            async def work():
                await asyncio.sleep(0.05)
                finished.append(1)
                return "done"

            async def impatient():
                return await asyncio.wait_for(
                    flight.run("k", work), timeout=0.01
                )

            with pytest.raises(asyncio.TimeoutError):
                await impatient()
            # The shared work survives the waiter's deadline...
            result = await flight.run("k", work)
            assert result == "done"
            # ...and ran exactly once.
            assert finished == [1]

        asyncio.run(scenario())
