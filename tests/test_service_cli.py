"""CLI surface for the service: --version, query verbs against a live
daemon, the serve subprocess lifecycle, and report --prometheus."""

import json
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import main
from repro.service import ServiceConfig, serve_in_thread

SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    handle = serve_in_thread(
        ServiceConfig(
            port=0,
            workers=2,
            max_queue=32,
            cache_dir=tmp_path_factory.mktemp("cli-cache"),
        )
    )
    yield handle
    handle.stop()


def query(service, *argv):
    host, port = service.address
    return main(["query", *argv, "--host", host, "--port", str(port)])


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_single_sourced_in_pyproject(self):
        pyproject = (SRC.parent / "pyproject.toml").read_text()
        assert 'version = { attr = "repro.__version__" }' in pyproject
        assert 'dynamic = ["version"]' in pyproject


class TestQuery:
    def test_status(self, service, capsys):
        assert query(service, "status") == 0
        status = json.loads(capsys.readouterr().out)
        assert status["version"] == __version__

    def test_harden(self, service, capsys):
        assert query(service, "harden", "abs", "labs") == 0
        result = json.loads(capsys.readouterr().out)
        assert result["functions"] == ["abs", "labs"]
        assert result["failed"] == {}

    def test_metrics_prints_exposition_text(self, service, capsys):
        assert query(service, "metrics") == 0
        body = capsys.readouterr().out
        assert "# TYPE service_requests_total counter" in body

    def test_inject_requires_exactly_one_function(self, service, capsys):
        assert query(service, "inject") == 2
        assert "exactly one function" in capsys.readouterr().err

    def test_unknown_function_is_rc_1(self, service, capsys):
        assert query(service, "inject", "nope") == 1
        assert "UNKNOWN_FUNCTION" in capsys.readouterr().err

    def test_unreachable_daemon_is_rc_2(self, capsys):
        assert main(["query", "status", "--port", "1"]) == 2
        assert "cannot reach" in capsys.readouterr().err


class TestServeSubprocess:
    def test_serve_query_sigint_lifecycle(self, tmp_path):
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--workers", "2", "--cache-dir", str(tmp_path / "cache")],
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = daemon.stdout.readline()
            assert banner.startswith("serving on ")
            host, port = banner.split()[2].rsplit(":", 1)

            out = subprocess.run(
                [sys.executable, "-m", "repro.cli", "query", "declaration",
                 "abs", "--host", host, "--port", port, "--wait", "10"],
                env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
                capture_output=True, text=True, timeout=120,
            )
            assert out.returncode == 0, out.stderr
            assert json.loads(out.stdout)["function"] == "abs"

            daemon.send_signal(signal.SIGINT)
            _, err = daemon.communicate(timeout=30)
            assert daemon.returncode == 0
            assert "draining..." in err
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()


class TestReportPrometheus:
    def test_trace_metrics_render_as_exposition_text(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["inject", "asctime", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", "--prometheus", str(trace)]) == 0
        body = capsys.readouterr().out
        assert "# TYPE" in body
        assert "sandbox_calls_total" in body
