"""Responsiveness under stress: a hung injection must not block
unrelated requests, expired deadlines come back as typed timeouts, and
a saturated daemon sheds load with RETRY_LATER instead of queueing
forever — then recovers."""

import concurrent.futures
import threading
import time

import pytest

import repro.service.handlers as handlers_mod
from repro.service import (
    ErrorCode,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve_in_thread,
)


@pytest.fixture()
def slow_injection(monkeypatch):
    """Make every injection block until released (a hung sandbox)."""
    release = threading.Event()
    real = handlers_mod._run_injection

    def hung(name, telemetry=None, max_vectors=1200, fault_models=(),
             sampling=None):
        if not release.wait(timeout=30):
            raise TimeoutError("test never released the hung injection")
        return real(name, telemetry, max_vectors, fault_models, sampling)

    monkeypatch.setattr(handlers_mod, "_run_injection", hung)
    yield release
    release.set()


class TestIsolation:
    def test_hung_injection_does_not_block_unrelated_requests(
        self, tmp_path, slow_injection
    ):
        handle = serve_in_thread(
            ServiceConfig(
                port=0, workers=2, max_queue=8, cache_dir=tmp_path / "cache"
            )
        )
        try:
            host, port = handle.address
            pool = concurrent.futures.ThreadPoolExecutor(2)

            def hung_request():
                with ServiceClient(host, port) as client:
                    return client.inject("strcpy")

            hung_future = pool.submit(hung_request)
            # Wait until the hung injection actually occupies a worker.
            deadline = time.monotonic() + 5
            with ServiceClient(host, port) as client:
                while client.status()["admission"]["inflight"] == 0:
                    assert time.monotonic() < deadline, "injection never started"
                    time.sleep(0.01)
                # Control-plane and admitted work still answer promptly
                # while the injection hangs.
                started = time.monotonic()
                assert client.status()["shutting_down"] is False
                with pytest.raises(ServiceError) as err:
                    client.inject("no_such_function")
                assert err.value.code == ErrorCode.UNKNOWN_FUNCTION
                assert time.monotonic() - started < 5
            assert not hung_future.done()
            slow_injection.set()
            assert hung_future.result(timeout=30)["function"] == "strcpy"
            pool.shutdown()
        finally:
            handle.stop()


class TestDeadlines:
    def test_expired_deadline_is_a_typed_timeout(self, tmp_path, slow_injection):
        handle = serve_in_thread(
            ServiceConfig(
                port=0, workers=1, max_queue=4, cache_dir=tmp_path / "cache"
            )
        )
        try:
            with ServiceClient(*handle.address) as client:
                started = time.monotonic()
                with pytest.raises(ServiceError) as err:
                    client.call(
                        "inject", {"function": "strlen"}, deadline_ms=100
                    )
                assert err.value.code == ErrorCode.DEADLINE_EXCEEDED
                # The wait is bounded by the deadline, not the hang.
                assert time.monotonic() - started < 5
                # The daemon is still live for control requests.
                assert client.status()["service"] == "repro.service"
        finally:
            handle.stop()

    def test_deadline_survivor_still_lands_in_the_store(
        self, tmp_path, monkeypatch
    ):
        """A waiter that gives up must not cancel the shared flight: the
        outcome checkpoints to the store and later requests hit cache."""
        real = handlers_mod._run_injection
        runs = []

        def slow(name, telemetry=None, max_vectors=1200, fault_models=(),
                 sampling=None):
            runs.append(name)
            time.sleep(0.5)
            return real(name, telemetry, max_vectors, fault_models, sampling)

        monkeypatch.setattr(handlers_mod, "_run_injection", slow)
        handle = serve_in_thread(
            ServiceConfig(
                port=0, workers=1, max_queue=4, cache_dir=tmp_path / "cache"
            )
        )
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ServiceError) as err:
                    client.call("inject", {"function": "abs"}, deadline_ms=100)
                assert err.value.code == ErrorCode.DEADLINE_EXCEEDED
                # Poll until the abandoned flight finishes and checkpoints.
                deadline = time.monotonic() + 10
                while True:
                    try:
                        row = client.inject("abs")
                        break
                    except ServiceError as exc:
                        assert exc.code == ErrorCode.RETRY_LATER
                        assert time.monotonic() < deadline
                        time.sleep(0.05)
                # The retry either joined the surviving flight or hit the
                # checkpointed outcome — either way the injection ran once.
                assert row["source"] in ("cache", "injected")
                assert runs == ["abs"]
                assert client.inject("abs")["source"] == "cache"
                assert runs == ["abs"]
        finally:
            handle.stop()


class TestOverload:
    def test_saturation_returns_retry_later_then_recovers(
        self, tmp_path, slow_injection
    ):
        handle = serve_in_thread(
            ServiceConfig(
                port=0, workers=1, max_queue=1, cache_dir=tmp_path / "cache"
            )
        )
        try:
            host, port = handle.address
            pool = concurrent.futures.ThreadPoolExecutor(2)

            def occupy(name):
                with ServiceClient(host, port) as client:
                    return client.inject(name)

            # Fill both admission slots (capacity = workers + max_queue = 2)
            # with distinct functions so single-flight cannot collapse them.
            futures = [pool.submit(occupy, n) for n in ("strcpy", "strncpy")]
            with ServiceClient(host, port) as client:
                deadline = time.monotonic() + 5
                while client.status()["admission"]["inflight"] < 2:
                    assert time.monotonic() < deadline, "slots never filled"
                    time.sleep(0.01)
                with pytest.raises(ServiceError) as err:
                    client.inject("memcpy")
                assert err.value.code == ErrorCode.RETRY_LATER
                assert err.value.retry_after_ms > 0
                # Control ops bypass admission: the operator can always see.
                snapshot = client.status()["admission"]
                assert snapshot["rejected_capacity"] >= 1
                assert snapshot["peak_inflight"] <= snapshot["capacity"]
                # Release the hung work; the daemon drains and recovers.
                slow_injection.set()
                for future in futures:
                    assert future.result(timeout=30)["vectors"] > 0
                assert client.inject("memcpy")["function"] == "memcpy"
            pool.shutdown()
        finally:
            handle.stop()

    def test_rate_limit_rejects_with_exact_hint(self, tmp_path):
        handle = serve_in_thread(
            ServiceConfig(
                port=0,
                workers=2,
                max_queue=8,
                rate=0.5,
                burst=1.0,
                cache_dir=tmp_path / "cache",
            )
        )
        try:
            with ServiceClient(*handle.address) as client:
                client.inject("abs")  # consumes the single burst token
                with pytest.raises(ServiceError) as err:
                    client.inject("labs")
                assert err.value.code == ErrorCode.RETRY_LATER
                assert 0 < err.value.retry_after_ms <= 2000
                assert client.status()["admission"]["rejected_rate"] >= 1
        finally:
            handle.stop()
