"""Wire-protocol tests: envelope validation, typed error codes, and
the one-line framing invariant."""

import json

import pytest

from repro.service.protocol import (
    ErrorCode,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
)


class TestRequestDecode:
    def test_happy_path(self):
        request = Request.decode(
            b'{"v": 1, "id": "r7", "op": "inject",'
            b' "params": {"function": "strcpy"}, "deadline_ms": 250}\n'
        )
        assert request.op == "inject"
        assert request.id == "r7"
        assert request.params == {"function": "strcpy"}
        assert request.deadline_ms == 250

    def test_defaults(self):
        request = Request.decode('{"v": 1, "op": "status"}')
        assert request.params == {}
        assert request.id is None
        assert request.deadline_ms is None

    @pytest.mark.parametrize(
        "line",
        [b"not json\n", b"[1, 2]\n", b'"just a string"\n', b"\xff\xfe\n"],
    )
    def test_malformed_lines(self, line):
        with pytest.raises(ProtocolError) as err:
            Request.decode(line)
        assert err.value.code == ErrorCode.BAD_REQUEST

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as err:
            Request.decode('{"v": 1}')
        assert err.value.code == ErrorCode.BAD_REQUEST

    @pytest.mark.parametrize("version", [None, 0, 2, "1"])
    def test_version_mismatch_is_typed(self, version):
        with pytest.raises(ProtocolError) as err:
            Request.decode(json.dumps({"v": version, "op": "status"}))
        assert err.value.code == ErrorCode.UNSUPPORTED_VERSION

    @pytest.mark.parametrize("deadline", [0, -5, "100", True])
    def test_bad_deadline(self, deadline):
        with pytest.raises(ProtocolError) as err:
            Request.decode(
                json.dumps({"v": 1, "op": "status", "deadline_ms": deadline})
            )
        assert err.value.code == ErrorCode.BAD_REQUEST

    def test_bad_params(self):
        with pytest.raises(ProtocolError):
            Request.decode('{"v": 1, "op": "status", "params": [1]}')


class TestFraming:
    def test_encode_is_one_line(self):
        # Embedded newlines must be escaped, never break framing.
        request = Request(op="inject", params={"function": "a\nb"}, id="x")
        encoded = request.encode()
        assert encoded.endswith(b"\n")
        assert encoded.count(b"\n") == 1
        assert Request.decode(encoded).params == {"function": "a\nb"}

    def test_response_round_trip(self):
        response = Response.success("r1", {"answer": 42})
        decoded = Response.decode(response.encode())
        assert decoded.ok
        assert decoded.id == "r1"
        assert decoded.result == {"answer": 42}
        assert decoded.code is None

    def test_error_round_trip_with_retry_hint(self):
        response = Response.failure(
            "r2", ErrorCode.RETRY_LATER, "busy", retry_after_ms=120
        )
        decoded = Response.decode(response.encode())
        assert not decoded.ok
        assert decoded.code == ErrorCode.RETRY_LATER
        assert decoded.error["retry_after_ms"] == 120
        assert decoded.code in ErrorCode.ALL

    def test_oversized_message_rejected(self):
        request = Request(op="inject", params={"function": "x" * MAX_LINE_BYTES})
        with pytest.raises(ProtocolError) as err:
            request.encode()
        assert err.value.code == ErrorCode.INTERNAL

    def test_version_constant_is_stamped(self):
        assert json.loads(Response.success(None, {}).encode())["v"] == (
            PROTOCOL_VERSION
        )
