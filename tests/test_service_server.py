"""End-to-end daemon tests over real sockets: endpoints, typed errors,
content-addressed cache reuse, single-flight, and graceful shutdown.

One shared service (module scope) backs the read-mostly cases; tests
that poison the sandbox or patch the injector start their own."""

import concurrent.futures
import json
import socket
import time

import pytest

import repro.service.handlers as handlers_mod
from repro.declarations import declaration_from_report
from repro.injector import inject_function
from repro.libc.catalog import BY_NAME
from repro.sandbox import Sandbox
from repro.service import (
    ErrorCode,
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve_in_thread,
)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    handle = serve_in_thread(
        ServiceConfig(
            port=0,
            workers=2,
            max_queue=32,
            cache_dir=tmp_path_factory.mktemp("service-cache"),
        )
    )
    yield handle
    handle.stop()


@pytest.fixture()
def client(service):
    with ServiceClient(*service.address) as open_client:
        yield open_client


class TestEndpoints:
    def test_status(self, client):
        from repro import __version__

        status = client.status()
        assert status["service"] == "repro.service"
        assert status["version"] == __version__
        assert status["protocol"] == PROTOCOL_VERSION
        assert status["functions"] > 100
        assert set(status["ops"]) == {
            "ballista", "declaration", "harden", "history", "inject",
            "metrics", "status", "validate",
            "worker.register", "worker.lease", "worker.heartbeat",
            "worker.result", "worker.complete",
            "fleet.submit", "fleet.collect", "fleet.forget", "fleet.status",
        }
        assert status["admission"]["capacity"] == 34
        assert status["shutting_down"] is False

    def test_declaration_matches_direct_pipeline(self, client):
        result = client.declaration("asctime")
        direct = declaration_from_report(
            inject_function("asctime"), BY_NAME["asctime"].version
        )
        assert result["xml"] == direct.to_xml()
        assert result["unsafe"] == direct.unsafe
        assert result["digest"]
        assert result["source"] in ("cache", "injected")

    def test_semi_auto_declaration_differs(self, client):
        full = client.declaration("closedir")
        semi = client.declaration("closedir", semi_auto=True)
        assert semi["xml"] != full["xml"]

    def test_inject_row(self, client):
        row = client.inject("abs")
        assert row["function"] == "abs"
        assert row["calls"] > 0
        assert row["robust_types"]
        assert isinstance(row["unsafe"], bool)

    def test_second_request_hits_cache(self, client):
        client.inject("labs")
        assert client.inject("labs")["source"] == "cache"

    def test_harden(self, client):
        result = client.harden(["abs", "asctime"], include_source=True)
        assert result["functions"] == ["abs", "asctime"]
        assert sorted(result["unsafe"] + result["safe"]) == ["abs", "asctime"]
        assert result["failed"] == {}
        assert set(result["declarations"]) == {"abs", "asctime"}
        assert "asctime" in result["wrapper_source"]

    def test_ballista(self, client):
        result = client.ballista(["abs"], configurations=["unwrapped"])
        assert result["tests"] > 0
        [row] = result["configurations"]
        assert row["configuration"] == "unwrapped"

    def test_metrics_scrape(self, client):
        client.status()
        body = client.metrics_text()
        assert "# TYPE service_requests_total counter" in body
        assert 'service_requests_total{code="OK",op="status"}' in body
        assert "service_request_seconds" in body

    def test_validate_batch(self, client):
        result = client.validate(
            [
                {"function": "strlen", "args": [{"cstring": "hello"}]},
                {"function": "strlen", "args": [{"null": True}]},
                {"function": "strlen", "args": [{"invalid": True}]},
            ]
        )
        assert result["batch"] == 3
        ok_row, null_row, wild_row = result["calls"]
        assert ok_row["ok"] is True and ok_row["violation"] is None
        assert null_row["ok"] is False and "arg 0" in null_row["violation"]
        assert wild_row["ok"] is False
        assert result["violations"] == 2
        assert result["wrapper"]["checks"] >= 3

    def test_validate_execute_forwards_admitted_calls(self, client):
        result = client.validate(
            [
                {"function": "strlen", "args": [{"cstring": "hello"}]},
                {"function": "strlen", "args": [{"null": True}]},
            ],
            execute=True,
        )
        good, rejected = result["calls"]
        assert good["status"] == "RETURNED" and good["return_value"] == 5
        # The NULL call was rejected by the prefix code, not executed:
        # it still RETURNED, with the declared error value and errno.
        assert rejected["status"] == "RETURNED"
        assert rejected["errno"] is not None
        assert result["violations"] == 1

    def test_validate_rejects_malformed_params(self, client):
        for params in (
            {},
            {"calls": []},
            {"calls": [{"args": []}]},
            {"calls": [{"function": "strlen", "args": ["text"]}]},
            {"calls": [{"function": "strlen", "args": [{"bogus": 1}]}]},
        ):
            with pytest.raises(ServiceError) as err:
                client.call("validate", params)
            assert err.value.code == ErrorCode.INVALID_PARAMS


class TestTypedErrors:
    def test_unknown_function(self, client):
        with pytest.raises(ServiceError) as err:
            client.inject("no_such_function")
        assert err.value.code == ErrorCode.UNKNOWN_FUNCTION

    def test_unknown_op(self, client):
        with pytest.raises(ServiceError) as err:
            client.call("frobnicate")
        assert err.value.code == ErrorCode.UNKNOWN_OP

    def test_invalid_params(self, client):
        with pytest.raises(ServiceError) as err:
            client.call("declaration", {})
        assert err.value.code == ErrorCode.INVALID_PARAMS
        with pytest.raises(ServiceError) as err:
            client.call("ballista", {"functions": []})
        assert err.value.code == ErrorCode.INVALID_PARAMS

    def test_bad_version_and_garbage_lines(self, service):
        host, port = service.address
        with socket.create_connection((host, port), timeout=10) as sock:
            stream = sock.makefile("rwb")
            stream.write(b'{"v": 99, "op": "status"}\n')
            stream.flush()
            answer = json.loads(stream.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == ErrorCode.UNSUPPORTED_VERSION
            # The connection survives a bad request.
            stream.write(b"this is not json\n")
            stream.flush()
            answer = json.loads(stream.readline())
            assert answer["error"]["code"] == ErrorCode.BAD_REQUEST
            stream.write(b'{"v": 1, "op": "status"}\n')
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True


class TestWarmCacheZeroSandbox:
    def test_warm_requests_never_touch_the_sandbox(self, tmp_path, monkeypatch):
        handle = serve_in_thread(
            ServiceConfig(port=0, workers=2, cache_dir=tmp_path / "cache")
        )
        try:
            with ServiceClient(*handle.address) as client:
                cold = client.declaration("strlen")
                assert cold["source"] == "injected"

                def poisoned(*args, **kwargs):
                    raise AssertionError("sandbox touched on a warm cache")

                # The daemon runs in this process: poisoning Sandbox.call
                # proves the warm path makes zero sandbox calls.
                monkeypatch.setattr(Sandbox, "call", poisoned)
                warm = client.declaration("strlen")
                assert warm["source"] == "cache"
                assert warm["xml"] == cold["xml"]
        finally:
            handle.stop()


class TestSingleFlight:
    def test_identical_concurrent_requests_inject_once(
        self, tmp_path, monkeypatch
    ):
        real = handlers_mod._run_injection
        runs = []

        def counting(name, telemetry=None, max_vectors=1200, fault_models=(),
                 sampling=None):
            runs.append(name)
            time.sleep(0.2)  # hold the flight open for the waiters
            return real(name, telemetry, max_vectors, fault_models, sampling)

        monkeypatch.setattr(handlers_mod, "_run_injection", counting)
        handle = serve_in_thread(
            ServiceConfig(
                port=0, workers=2, max_queue=32, cache_dir=tmp_path / "cache"
            )
        )
        try:
            host, port = handle.address

            def one_request(_):
                with ServiceClient(host, port) as client:
                    return client.inject("strcmp")

            with concurrent.futures.ThreadPoolExecutor(12) as pool:
                rows = list(pool.map(one_request, range(12)))
            assert runs.count("strcmp") == 1
            assert all(row["source"] == "injected" for row in rows)
            assert len({json.dumps(r, sort_keys=True) for r in rows}) == 1
            stats = handle.service.state.singleflight.stats()
            assert stats["leaders"] == 1
            assert stats["shared"] == 11
            # The shared outcome landed in the store: the next request
            # is a cache hit with no new flight.
            with ServiceClient(host, port) as client:
                assert client.inject("strcmp")["source"] == "cache"
            assert runs.count("strcmp") == 1
        finally:
            handle.stop()


class TestShutdown:
    def test_graceful_stop_refuses_new_connections(self, tmp_path):
        handle = serve_in_thread(
            ServiceConfig(port=0, workers=1, cache_dir=tmp_path / "cache")
        )
        host, port = handle.address
        with ServiceClient(host, port) as client:
            client.status()
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)


class TestHistory:
    def test_history_without_ledger_is_invalid_params(self, client):
        with pytest.raises(ServiceError) as err:
            client.call("history")
        assert err.value.code == ErrorCode.INVALID_PARAMS

    def test_history_reads_ledger_and_shutdown_rolls_up(self, tmp_path):
        from repro.obs.ledger import Ledger

        db = tmp_path / "ledger.sqlite"
        Ledger(db).ingest_bench_document(
            {"version": 1, "benchmarks": {"smoke": {"elapsed_seconds": 1.0}}},
            source="seed",
        )
        handle = serve_in_thread(
            ServiceConfig(port=0, workers=1, ledger=db)
        )
        try:
            with ServiceClient(*handle.address) as client:
                history = client.call("history", {"limit": 5})
                assert history["ledger"]["runs_total"] == 1
                assert history["runs"][0]["kind"] == "bench"
                with pytest.raises(ServiceError) as err:
                    client.call("history", {"limit": 0})
                assert err.value.code == ErrorCode.INVALID_PARAMS
                with pytest.raises(ServiceError) as err:
                    client.call("history", {"kind": "nope"})
                assert err.value.code == ErrorCode.INVALID_PARAMS
                body = client.metrics_text()
                assert "ledger_runs_total 1" in body
        finally:
            handle.stop()
        # Graceful shutdown rolled this lifetime's traffic into the ledger.
        service_runs = Ledger(db).runs(kind="service")
        assert len(service_runs) == 1
        assert service_runs[0].extra["requests_total"] > 0
