"""Differential equivalence: bulk string models vs per-byte references.

``repro.libc.strings`` implements the str*/mem* models with bulk
scans plus event-index arithmetic; ``repro.libc.reference_strings``
keeps the original per-byte loops as the executable specification.
The two must be indistinguishable through the sandbox: same terminal
status, return value, errno, *step count*, fault coordinates, and
post-call memory image — for every argument shape and every watchdog
budget, including each cutoff inside a call.

The fuzzer sweeps budgets around the reference's exact event count so
every hang boundary (one step early, the faulting step itself, one
step late) is exercised; a larger sweep (53k pairs) ran offline with
zero mismatches before the bulk models landed.
"""

from __future__ import annotations

import random

import pytest

from repro.libc import reference_strings, strings
from repro.libc.runtime import LibcRuntime
from repro.memory import INVALID_POINTER, NULL, Protection
from repro.sandbox import Sandbox

FUNCTIONS = sorted(reference_strings.REFERENCE_MODELS)

TRIALS = 60

FULL_BUDGET = 1_000_000


def _snapshot(runtime: LibcRuntime):
    """Everything a string model may touch: memory, strtok, errno."""
    regions = tuple(
        (region.base, region.size, region.prot.value, region.freed, bytes(region.data))
        for region in runtime.space.regions()
    )
    return regions, runtime.strtok_state, runtime.errno


def _outcome_key(outcome):
    fault = outcome.fault
    return (
        outcome.status.name,
        outcome.return_value,
        outcome.errno,
        outcome.steps,
        None if fault is None else (fault.address, fault.access.name, fault.reason),
        outcome.detail,
    )


def _build_case(rng: random.Random):
    """A runtime holding three buffers of random shape, plus the
    pointer pool (buffer bases/interiors, NULL, INVALID)."""
    base = LibcRuntime()
    pool = []
    for _ in range(3):
        kind = rng.choice(["term", "unterm", "zero", "ro", "wo"])
        size = rng.randint(0, 24)
        content = bytes(
            rng.choice([0x41, 0x42, 0x2C, 0x3B, 0x00, 0xA5]) for _ in range(size)
        )
        if kind == "term":
            region = base.space.alloc_cstring(content.replace(b"\x00", b"A"))
        elif kind == "unterm":
            region = base.space.alloc_bytes(content.replace(b"\x00", b"B") or b"B")
        elif kind == "zero":
            region = base.space.map_region(0)
        elif kind == "ro":
            region = base.space.alloc_cstring(content.replace(b"\x00", b"C"))
            region.prot = Protection.READ
        else:
            region = base.space.alloc_bytes(content or b"D")
            region.prot = Protection.WRITE
        offset = rng.randint(0, max(0, region.size - 1)) if region.size else 0
        pool.append(region.base + (offset if rng.random() < 0.3 else 0))
    pool.extend([NULL, INVALID_POINTER])
    return base, pool


def _args_for(name: str, rng: random.Random, pool: list[int]):
    counts = [0, 1, 3, 8, 40, 2**31]
    if name in {"strcpy", "strcat", "strcmp", "strspn", "strcspn", "strpbrk", "strtok"}:
        return [rng.choice(pool), rng.choice(pool)]
    if name == "strlen":
        return [rng.choice(pool)]
    if name in {"strchr", "strrchr"}:
        return [rng.choice(pool), rng.choice([0, 0x41, 0x2C, 0xA5, 256 + 0x41])]
    if name in {"strncpy", "strncat", "strncmp", "memcmp"}:
        return [rng.choice(pool), rng.choice(pool), rng.choice(counts)]
    if name == "memchr":
        return [rng.choice(pool), rng.choice([0, 0x41, 0xA5]), rng.choice(counts)]
    raise AssertionError(f"no argument recipe for {name}")


@pytest.mark.parametrize("name", FUNCTIONS)
def test_bulk_model_matches_reference(name):
    # str seeds hash deterministically (unlike hash()), keeping the
    # sweep reproducible under PYTHONHASHSEED randomization.
    rng = random.Random(f"strings-equivalence:{name}")
    fast_model = getattr(strings, f"libc_{name}")
    reference = reference_strings.REFERENCE_MODELS[name]
    for trial in range(TRIALS):
        base, pool = _build_case(rng)
        args = _args_for(name, rng, rng.sample(pool, len(pool)))
        probe = Sandbox(step_budget=FULL_BUDGET).call(reference, args, base.fork())
        # Sweep every budget near the reference's event count: the
        # exact cutoff, both neighbours, and the unconstrained run.
        budgets = {FULL_BUDGET}
        for delta in range(3):
            budgets.add(max(0, probe.steps - delta))
            budgets.add(probe.steps + delta)
        for budget in sorted(budgets):
            fast_runtime = base.fork()
            reference_runtime = base.fork()
            fast = Sandbox(step_budget=budget).call(fast_model, args, fast_runtime)
            slow = Sandbox(step_budget=budget).call(
                reference, args, reference_runtime
            )
            context = f"{name} trial={trial} args={args} budget={budget}"
            assert _outcome_key(fast) == _outcome_key(slow), context
            assert _snapshot(fast_runtime) == _snapshot(reference_runtime), context
