"""Deeper checks of the synthetic environment's internal consistency."""

import pytest

from repro.cdecl import DeclarationParser, typedef_table
from repro.syslib import build_environment
from repro.syslib.synthetic import (
    EXTERNAL_TOTAL,
    MAN_COVERAGE,
    _fictitious_functions,
)
import random


@pytest.fixture(scope="module")
def environment():
    return build_environment()


class TestFictitiousFunctions:
    def test_deterministic_for_fixed_seed(self):
        first = _fictitious_functions(random.Random(42), 50)
        second = _fictitious_functions(random.Random(42), 50)
        assert first == second

    def test_names_unique(self):
        pairs = _fictitious_functions(random.Random(7), 200)
        names = [name for name, _ in pairs]
        assert len(names) == len(set(names))

    def test_every_prototype_parses_to_its_name(self):
        parser = DeclarationParser(typedef_table())
        for name, prototype in _fictitious_functions(random.Random(3), 100):
            parsed = parser.parse_prototype(prototype)
            assert parsed.name == name


class TestEnvironmentInternals:
    def test_population_size(self, environment):
        assert len(environment.external_names) == EXTERNAL_TOTAL

    def test_headers_parse_cleanly(self, environment):
        """Every corpus header must yield at least the prototypes the
        ground truth places in it."""
        parser = DeclarationParser(typedef_table())
        declared_by_header: dict[str, set[str]] = {}
        for truth in environment.ground_truth.values():
            for header in truth.headers:
                declared_by_header.setdefault(header, set()).add(truth.name)
        for header, expected in declared_by_header.items():
            text = environment.headers.read(header)
            assert text is not None, header
            found = {p.name for p in parser.parse_header(text)}
            missing = expected - found
            assert not missing, f"{header}: {missing}"

    def test_include_graph_is_acyclic_enough(self, environment):
        """transitive_closure must terminate on every entry point."""
        corpus = environment.headers
        for path in corpus.paths():
            closure = corpus.transitive_closure([path])
            assert path in closure
            assert len(closure) <= len(corpus.paths())

    def test_symbol_table_round_trips_through_objdump(self, environment):
        from repro.syslib import parse_objdump

        text = environment.symbol_table.objdump_output()
        parsed = parse_objdump(text)
        assert len(parsed.symbols) == len(environment.symbol_table.symbols)
        assert parsed.internal_fraction() == pytest.approx(
            environment.symbol_table.internal_fraction()
        )

    def test_man_coverage_is_seeded_not_emergent(self, environment):
        expected_pages = round(MAN_COVERAGE * EXTERNAL_TOTAL)
        assert len(environment.man_pages.pages) == expected_pages

    def test_wrong_header_pages_really_are_wrong(self, environment):
        """A wrong-header man page's listed headers (and everything
        they include) must not declare the function."""
        from repro.manpages import synopsis_headers

        parser = DeclarationParser(typedef_table())
        for truth in environment.ground_truth.values():
            if not (truth.has_man_page and truth.man_lists_headers):
                continue
            if truth.man_headers_correct or not truth.headers:
                continue
            page = environment.man_pages.page_for(truth.name)
            listed = synopsis_headers(page)
            closure = environment.headers.transitive_closure(listed)
            for header in closure:
                text = environment.headers.read(header) or ""
                names = {p.name for p in parser.parse_header(text)}
                assert truth.name not in names, (truth.name, header)
