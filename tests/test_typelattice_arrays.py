"""Tests for the fixed-size array hierarchy (paper Figure 3)."""

import pytest

from repro.typelattice import Lattice, registry as R


@pytest.fixture(scope="module")
def lattice():
    return Lattice.for_sizes({0, 8, 20, 44, 100})


class TestFigure3Edges:
    """Every edge drawn in Figure 3, at representative sizes."""

    def test_fixed_types_under_their_array_unifieds(self, lattice):
        assert lattice.is_subtype(R.RONLY_FIXED(44), R.R_ARRAY(44))
        assert lattice.is_subtype(R.RW_FIXED(44), R.RW_ARRAY(44))
        assert lattice.is_subtype(R.WONLY_FIXED(44), R.W_ARRAY(44))

    def test_fixed_exact_size_constraint(self, lattice):
        # t <= v: a 44-byte buffer provides any weaker guarantee...
        assert lattice.is_subtype(R.RONLY_FIXED(44), R.R_ARRAY(20))
        # ...but not a stronger one.
        assert not lattice.is_subtype(R.RONLY_FIXED(20), R.R_ARRAY(44))

    def test_rw_array_under_r_and_w(self, lattice):
        assert lattice.is_subtype(R.RW_ARRAY(44), R.R_ARRAY(44))
        assert lattice.is_subtype(R.RW_ARRAY(44), R.W_ARRAY(20))
        assert not lattice.is_subtype(R.R_ARRAY(44), R.RW_ARRAY(44))

    def test_size_weakening_within_one_template(self, lattice):
        # Requiring more bytes is the stronger type.
        assert lattice.is_subtype(R.R_ARRAY(44), R.R_ARRAY(8))
        assert not lattice.is_subtype(R.R_ARRAY(8), R.R_ARRAY(44))

    def test_null_unified_variants(self, lattice):
        for null_variant in (R.R_ARRAY_NULL(44), R.W_ARRAY_NULL(44), R.RW_ARRAY_NULL(44)):
            assert lattice.is_subtype(R.NULL, null_variant)
        assert lattice.is_subtype(R.R_ARRAY(44), R.R_ARRAY_NULL(44))
        assert lattice.is_subtype(R.RW_ARRAY_NULL(44), R.R_ARRAY_NULL(44))
        assert lattice.is_subtype(R.RW_ARRAY_NULL(44), R.W_ARRAY_NULL(20))

    def test_everything_below_unconstrained(self, lattice):
        for instance in (
            R.NULL,
            R.INVALID,
            R.RONLY_FIXED(44),
            R.RW_FIXED(8),
            R.WONLY_FIXED(0),
            R.R_ARRAY(100),
            R.RW_ARRAY_NULL(20),
        ):
            assert lattice.is_subtype(instance, R.UNCONSTRAINED)

    def test_invalid_only_below_unconstrained(self, lattice):
        for other in (R.R_ARRAY_NULL(8), R.RW_ARRAY(8), R.R_ARRAY(0)):
            assert not lattice.is_subtype(R.INVALID, other)

    def test_read_and_write_branches_incomparable(self, lattice):
        assert not lattice.is_subtype(R.R_ARRAY(8), R.W_ARRAY(8))
        assert not lattice.is_subtype(R.W_ARRAY(8), R.R_ARRAY(8))
        assert not lattice.is_subtype(R.RONLY_FIXED(8), R.W_ARRAY(8))
        assert not lattice.is_subtype(R.WONLY_FIXED(8), R.R_ARRAY(8))


class TestPartialOrderLaws:
    def test_reflexivity(self, lattice):
        for instance in lattice.instances:
            assert lattice.is_subtype(instance, instance)

    def test_antisymmetry(self, lattice):
        for a in lattice.instances:
            for b in lattice.instances:
                if a != b:
                    assert not (
                        lattice.is_subtype(a, b) and lattice.is_subtype(b, a)
                    ), f"{a} and {b} are mutually subtypes"

    def test_transitivity(self, lattice):
        # Spot-check a known three-step chain.
        assert lattice.is_subtype(R.RW_FIXED(44), R.RW_ARRAY(44))
        assert lattice.is_subtype(R.RW_ARRAY(44), R.R_ARRAY(20))
        assert lattice.is_subtype(R.R_ARRAY(20), R.R_ARRAY_NULL(8))
        assert lattice.is_subtype(R.RW_FIXED(44), R.R_ARRAY_NULL(8))

    def test_fundamental_types_are_never_supertypes(self, lattice):
        """Paper: "A fundamental type is never a supertype"."""
        for fundamental in lattice.fundamentals():
            assert not lattice.subtypes(fundamental), (
                f"fundamental {fundamental} has subtypes"
            )


class TestHelpers:
    def test_weakest_of_chain(self, lattice):
        chain = [R.RW_FIXED(44), R.RW_ARRAY(44), R.R_ARRAY(44), R.R_ARRAY_NULL(44)]
        assert lattice.weakest(chain) == [R.R_ARRAY_NULL(44)]

    def test_strongest_of_chain(self, lattice):
        chain = [R.RW_ARRAY(44), R.R_ARRAY(44), R.R_ARRAY_NULL(44)]
        assert lattice.strongest(chain) == [R.RW_ARRAY(44)]

    def test_weakest_keeps_incomparables(self, lattice):
        result = lattice.weakest([R.R_ARRAY(8), R.W_ARRAY(8)])
        assert set(result) == {R.R_ARRAY(8), R.W_ARRAY(8)}

    def test_members_of(self, lattice):
        fundamentals = [R.RONLY_FIXED(44), R.RW_FIXED(44), R.NULL, R.INVALID]
        members = lattice.members_of(R.R_ARRAY_NULL(44), fundamentals)
        assert members == {R.RONLY_FIXED(44), R.RW_FIXED(44), R.NULL}
