"""Tests for the file-pointer hierarchy (paper Figure 4) and the DIR,
string, descriptor, integer, size, real and funcptr families."""

import pytest

from repro.typelattice import FILE_SIZE, DIR_SIZE, Lattice, registry as R


@pytest.fixture(scope="module")
def lattice():
    return Lattice.for_sizes({1, 8, FILE_SIZE, DIR_SIZE, FILE_SIZE + 1})


class TestFigure4:
    def test_fundamental_files_under_r_and_w(self, lattice):
        assert lattice.is_subtype(R.RONLY_FILE, R.R_FILE)
        assert lattice.is_subtype(R.RW_FILE, R.R_FILE)
        assert lattice.is_subtype(R.RW_FILE, R.W_FILE)
        assert lattice.is_subtype(R.WONLY_FILE, R.W_FILE)
        assert not lattice.is_subtype(R.RONLY_FILE, R.W_FILE)
        assert not lattice.is_subtype(R.WONLY_FILE, R.R_FILE)

    def test_r_file_and_w_file_not_comparable(self, lattice):
        """Paper: "types R_FILE and W_FILE are not comparable because
        the intersection of their value sets is a strict non-empty
        subset of both" (it is V(RW_FILE))."""
        assert not lattice.is_subtype(R.R_FILE, R.W_FILE)
        assert not lattice.is_subtype(R.W_FILE, R.R_FILE)

    def test_open_file_hierarchy(self, lattice):
        assert lattice.is_subtype(R.R_FILE, R.OPEN_FILE)
        assert lattice.is_subtype(R.W_FILE, R.OPEN_FILE)
        assert lattice.is_subtype(R.OPEN_FILE, R.OPEN_FILE_NULL)
        assert lattice.is_subtype(R.NULL, R.OPEN_FILE_NULL)

    def test_cross_edge_open_file_is_rw_memory(self, lattice):
        """OPEN_FILE <= RW_ARRAY[s] for s <= sizeof(FILE)."""
        assert lattice.is_subtype(R.OPEN_FILE, R.RW_ARRAY(FILE_SIZE))
        assert lattice.is_subtype(R.OPEN_FILE, R.RW_ARRAY(8))
        assert not lattice.is_subtype(R.OPEN_FILE, R.RW_ARRAY(FILE_SIZE + 1))
        assert lattice.is_subtype(R.OPEN_FILE_NULL, R.RW_ARRAY_NULL(FILE_SIZE))

    def test_transitive_file_to_unconstrained(self, lattice):
        assert lattice.is_subtype(R.RONLY_FILE, R.UNCONSTRAINED)

    def test_corrupt_and_stale_not_open_files(self, lattice):
        for bad in (R.CORRUPT_FILE, R.STALE_FILE):
            assert not lattice.is_subtype(bad, R.OPEN_FILE)
            assert lattice.is_subtype(bad, R.RW_ARRAY(FILE_SIZE))


class TestDirFamily:
    def test_open_dir_hierarchy(self, lattice):
        assert lattice.is_subtype(R.OPEN_DIR, R.OPEN_DIR_NULL)
        assert lattice.is_subtype(R.NULL, R.OPEN_DIR_NULL)
        assert lattice.is_subtype(R.OPEN_DIR, R.RW_ARRAY(DIR_SIZE))
        assert not lattice.is_subtype(R.CORRUPT_DIR, R.OPEN_DIR)
        assert lattice.is_subtype(R.STALE_DIR, R.RW_ARRAY(DIR_SIZE))


class TestStringFamily:
    def test_string_fundamentals(self, lattice):
        assert lattice.is_subtype(R.STRING_RO, R.CSTRING)
        assert lattice.is_subtype(R.STRING_RW, R.WRITABLE_STRING)
        assert lattice.is_subtype(R.WRITABLE_STRING, R.CSTRING)
        assert lattice.is_subtype(R.VALID_MODE, R.MODE_STRING)
        assert lattice.is_subtype(R.MODE_STRING, R.CSTRING)
        assert lattice.is_subtype(R.VALID_FORMAT, R.FORMAT_STRING)

    def test_strings_are_readable_memory(self, lattice):
        assert lattice.is_subtype(R.CSTRING, R.R_ARRAY(1))
        assert lattice.is_subtype(R.WRITABLE_STRING, R.RW_ARRAY(1))
        assert not lattice.is_subtype(R.CSTRING, R.R_ARRAY(8))

    def test_null_string_variants(self, lattice):
        assert lattice.is_subtype(R.NULL, R.CSTRING_NULL)
        assert lattice.is_subtype(R.CSTRING, R.CSTRING_NULL)
        assert lattice.is_subtype(R.WRITABLE_STRING_NULL, R.CSTRING_NULL)

    def test_mode_and_format_incomparable(self, lattice):
        assert not lattice.is_subtype(R.MODE_STRING, R.FORMAT_STRING)
        assert not lattice.is_subtype(R.FORMAT_STRING, R.MODE_STRING)


class TestScalarFamilies:
    def test_fd_family(self, lattice):
        assert lattice.is_subtype(R.FD_RW, R.READABLE_FD)
        assert lattice.is_subtype(R.FD_RW, R.WRITABLE_FD)
        assert lattice.is_subtype(R.FD_RONLY, R.READABLE_FD)
        assert not lattice.is_subtype(R.FD_RONLY, R.WRITABLE_FD)
        assert lattice.is_subtype(R.READABLE_FD, R.OPEN_FD)
        assert lattice.is_subtype(R.FD_CLOSED, R.ANY_FD)
        assert not lattice.is_subtype(R.FD_CLOSED, R.OPEN_FD)

    def test_int_family_boundary_split(self, lattice):
        """The section 4.2 overlapping-types construction: CHAR_RANGE
        overlaps both NONNEG and NONPOS, so the fundamentals are split
        at the boundaries."""
        assert lattice.is_subtype(R.INT_SMALL_NEG, R.CHAR_RANGE)
        assert lattice.is_subtype(R.INT_SMALL_NEG, R.INT_NONPOS)
        assert not lattice.is_subtype(R.INT_BIG_NEG, R.CHAR_RANGE)
        assert lattice.is_subtype(R.INT_ZERO, R.INT_NONNEG)
        assert lattice.is_subtype(R.INT_ZERO, R.INT_NONPOS)
        assert lattice.is_subtype(R.INT_ZERO, R.CHAR_RANGE)
        assert lattice.is_subtype(R.INT_SMALL_POS, R.CHAR_RANGE)
        assert not lattice.is_subtype(R.INT_BIG_POS, R.CHAR_RANGE)
        assert not lattice.is_subtype(R.CHAR_RANGE, R.INT_NONNEG)
        assert not lattice.is_subtype(R.INT_NONNEG, R.CHAR_RANGE)

    def test_size_family(self, lattice):
        assert lattice.is_subtype(R.SIZE_ZERO, R.REASONABLE_SIZE)
        assert lattice.is_subtype(R.SIZE_SMALL, R.REASONABLE_SIZE)
        assert not lattice.is_subtype(R.SIZE_HUGE, R.REASONABLE_SIZE)
        assert lattice.is_subtype(R.SIZE_HUGE, R.ANY_SIZE)

    def test_real_family(self, lattice):
        assert lattice.is_subtype(R.REAL_NEG, R.FINITE_REAL)
        assert not lattice.is_subtype(R.REAL_NAN, R.FINITE_REAL)
        assert lattice.is_subtype(R.REAL_NAN, R.ANY_REAL)

    def test_funcptr_family(self, lattice):
        assert lattice.is_subtype(R.VALID_FUNCPTR, R.FUNCPTR)
        assert lattice.is_subtype(R.FUNCPTR, R.FUNCPTR_NULL)
        assert lattice.is_subtype(R.NULL, R.FUNCPTR_NULL)
        assert lattice.is_subtype(R.FUNCPTR_NULL, R.UNCONSTRAINED)
        assert not lattice.is_subtype(R.VALID_FUNCPTR, R.CSTRING)


class TestFamiliesStayDisjoint:
    def test_scalar_families_not_under_pointer_top(self, lattice):
        for scalar in (R.INT_ZERO, R.SIZE_SMALL, R.REAL_POS, R.FD_RW):
            assert not lattice.is_subtype(scalar, R.UNCONSTRAINED)

    def test_pointer_types_not_under_scalar_tops(self, lattice):
        for top in (R.ANY_INT, R.ANY_SIZE, R.ANY_REAL, R.ANY_FD):
            assert not lattice.is_subtype(R.NULL, top)
            assert not lattice.is_subtype(R.RW_FIXED(8), top)
