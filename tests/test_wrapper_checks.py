"""Tests for the wrapper's checking functions (sections 5.1, 5.2)."""

import math

import pytest

from repro.libc import fileio, standard_runtime
from repro.libc.dirent_fns import alloc_dir
from repro.libc.kernel import READ
from repro.memory import INVALID_POINTER, NULL, Protection
from repro.sandbox.context import CallContext
from repro.typelattice import registry as R
from repro.wrapper import CheckConfig, CheckLibrary, WrapperState


@pytest.fixture()
def runtime():
    return standard_runtime()


@pytest.fixture()
def checks(runtime):
    return CheckLibrary(runtime, WrapperState())


class TestMemoryChecks:
    def test_r_array(self, runtime, checks):
        region = runtime.space.map_region(44, Protection.READ)
        assert checks.check(R.R_ARRAY(44), region.base)
        assert not checks.check(R.R_ARRAY(45), region.base)
        assert not checks.check(R.R_ARRAY(44), NULL)
        assert not checks.check(R.R_ARRAY(44), INVALID_POINTER)

    def test_w_array_rejects_read_only(self, runtime, checks):
        region = runtime.space.map_region(44, Protection.READ)
        assert not checks.check(R.W_ARRAY(44), region.base)
        rw = runtime.space.map_region(44)
        assert checks.check(R.W_ARRAY(44), rw.base)

    def test_null_variants(self, runtime, checks):
        assert checks.check(R.R_ARRAY_NULL(44), NULL)
        assert not checks.check(R.R_ARRAY(44), NULL)
        region = runtime.space.map_region(44)
        assert checks.check(R.RW_ARRAY_NULL(44), region.base)

    def test_heap_block_bounds_are_exact(self, runtime, checks):
        """Stateful checking: the allocation table gives byte-exact
        bounds — the defence against same-page overflow (section 8)."""
        pointer = runtime.heap.malloc(10)
        assert checks.check(R.RW_ARRAY(10), pointer)
        assert not checks.check(R.RW_ARRAY(11), pointer)
        assert checks.check(R.RW_ARRAY(4), pointer + 6)
        assert not checks.check(R.RW_ARRAY(5), pointer + 6)

    def test_freed_heap_block_rejected(self, runtime, checks):
        pointer = runtime.heap.malloc(16)
        runtime.heap.free(pointer)
        assert not checks.check(R.R_ARRAY(1), pointer)

    def test_unconstrained_accepts_anything(self, checks):
        for value in (NULL, INVALID_POINTER, 12345):
            assert checks.check(R.UNCONSTRAINED, value)


class TestStringChecks:
    def test_cstring_requires_terminator(self, runtime, checks):
        good = runtime.space.alloc_cstring("hello")
        assert checks.check(R.CSTRING, good.base)
        unterminated = runtime.space.alloc_bytes(b"\xa5" * 8)
        assert not checks.check(R.CSTRING, unterminated.base)
        assert not checks.check(R.CSTRING, NULL)
        assert checks.check(R.CSTRING_NULL, NULL)

    def test_writable_string(self, runtime, checks):
        rw = runtime.space.alloc_cstring("text")
        assert checks.check(R.WRITABLE_STRING, rw.base)
        ro = runtime.space.alloc_cstring("text", prot=Protection.READ)
        assert not checks.check(R.WRITABLE_STRING, ro.base)

    def test_unterminated_heap_string_rejected(self, runtime, checks):
        pointer = runtime.heap.malloc(8)
        runtime.space.store(pointer, b"\xa5" * 8)
        assert not checks.check(R.CSTRING, pointer)

    def test_mode_string(self, runtime, checks):
        for mode in ("r", "w", "a", "r+", "rb", "w+b"):
            region = runtime.space.alloc_cstring(mode)
            assert checks.check(R.MODE_STRING, region.base), mode
        for bad in ("", "x", "hello", "+r"):
            region = runtime.space.alloc_cstring(bad)
            assert not checks.check(R.MODE_STRING, region.base), bad

    def test_format_string_blocks_directives_and_percent_n(self, runtime, checks):
        safe = runtime.space.alloc_cstring("progress 100%% done")
        assert checks.check(R.FORMAT_STRING, safe.base)
        plain = runtime.space.alloc_cstring("no directives")
        assert checks.check(R.FORMAT_STRING, plain.base)
        for attack in ("%n", "%s%s%s", "value: %d", "%"):
            region = runtime.space.alloc_cstring(attack)
            assert not checks.check(R.FORMAT_STRING, region.base), attack


class TestFileChecks:
    def _open_file(self, runtime, readable=True, writable=True):
        fd = runtime.kernel.open("/tmp/input.txt", READ)
        return fileio.alloc_file(CallContext(runtime), fd, readable, writable)

    def test_open_file_accepts_live_stream(self, runtime, checks):
        fp = self._open_file(runtime)
        assert checks.check(R.OPEN_FILE, fp)
        assert checks.check(R.OPEN_FILE_NULL, NULL)

    def test_open_file_rejects_dead_descriptor(self, runtime, checks):
        fp = fileio.alloc_file(CallContext(runtime), 222, True, True)
        assert not checks.check(R.OPEN_FILE, fp)

    def test_open_file_rejects_inaccessible_memory(self, runtime, checks):
        assert not checks.check(R.OPEN_FILE, INVALID_POINTER)
        small = runtime.space.map_region(32)
        assert not checks.check(R.OPEN_FILE, small.base)

    def test_fileno_fstat_check_is_incomplete_by_design(self, runtime, checks):
        """Paper: "in theory, this is not a complete test" — a
        corrupted FILE with a live descriptor passes."""
        fp = self._open_file(runtime)
        runtime.space.store_u64(fp + fileio.OFF_BUF, 0xBAD0BAD00000)
        assert checks.check(R.OPEN_FILE, fp)

    def test_tracked_file_assertion_catches_corruption(self, runtime):
        state = WrapperState()
        checks = CheckLibrary(runtime, state)
        checks.active_assertions = ("track_file",)
        fp = self._open_file(runtime)
        assert not checks.check(R.OPEN_FILE, fp)  # never registered
        state.seed_file(fp)
        assert checks.check(R.OPEN_FILE, fp)


class TestDirChecks:
    def test_open_dir_is_purely_stateful(self, runtime):
        state = WrapperState()
        checks = CheckLibrary(runtime, state)
        fd = runtime.kernel.open("/tmp", READ)
        dirp = alloc_dir(CallContext(runtime), ["."], fd)
        assert not checks.check(R.OPEN_DIR, dirp)
        state.seed_dir(dirp)
        assert checks.check(R.OPEN_DIR, dirp)
        assert checks.check(R.OPEN_DIR_NULL, NULL)


class TestScalarChecks:
    def test_char_range(self, checks):
        assert checks.check(R.CHAR_RANGE, -128)
        assert checks.check(R.CHAR_RANGE, 255)
        assert not checks.check(R.CHAR_RANGE, -129)
        assert not checks.check(R.CHAR_RANGE, 256)

    def test_fd_checks(self, runtime, checks):
        fd = runtime.kernel.open("/tmp/input.txt", READ)
        assert checks.check(R.OPEN_FD, fd)
        assert checks.check(R.READABLE_FD, fd)
        assert not checks.check(R.WRITABLE_FD, fd)
        assert not checks.check(R.OPEN_FD, 444)
        assert checks.check(R.ANY_FD, -1)

    def test_size_checks(self, checks):
        assert checks.check(R.REASONABLE_SIZE, 0)
        assert checks.check(R.REASONABLE_SIZE, 2**30)
        assert not checks.check(R.REASONABLE_SIZE, 2**31)

    def test_real_checks(self, checks):
        assert checks.check(R.FINITE_REAL, 1.5)
        assert not checks.check(R.FINITE_REAL, math.nan)
        assert not checks.check(R.FINITE_REAL, math.inf)
        assert checks.check(R.ANY_REAL, math.nan)

    def test_funcptr_checks(self, runtime, checks):
        pointer = runtime.register_funcptr(lambda ctx, a, b: 0)
        assert checks.check(R.FUNCPTR, pointer)
        assert not checks.check(R.FUNCPTR, NULL)
        assert checks.check(R.FUNCPTR_NULL, NULL)
        data = runtime.space.map_region(16)
        assert not checks.check(R.FUNCPTR, data.base)

    def test_unknown_type_raises_key_error(self, checks):
        with pytest.raises(KeyError):
            checks.check(R.RONLY_FILE, 0)  # fundamental: no check function


class TestProbeModes:
    def test_page_probe_counts_fewer_probes(self, runtime):
        big = runtime.space.map_region(3 * 4096)
        paged = CheckLibrary(runtime, WrapperState(), CheckConfig(page_probe=True))
        assert paged.check(R.R_ARRAY(3 * 4096), big.base)
        exhaustive = CheckLibrary(
            runtime, WrapperState(), CheckConfig(page_probe=False)
        )
        assert exhaustive.check(R.R_ARRAY(3 * 4096), big.base)
        assert paged.probe_bytes < exhaustive.probe_bytes / 100

    def test_page_granularity_misses_same_page_overflow(self, runtime):
        """The section 8 comparison: with real-MMU page granularity a
        stateless probe cannot see a same-page overflow, while the
        stateful heap table rejects it."""
        pointer = runtime.heap.malloc(10)
        blind = CheckLibrary(
            runtime,
            WrapperState(),
            CheckConfig(stateful=False, page_granularity=True),
        )
        assert blind.check(R.RW_ARRAY(100), pointer)  # overflow passes!
        stateful = CheckLibrary(runtime, WrapperState(), CheckConfig(stateful=True))
        assert not stateful.check(R.RW_ARRAY(100), pointer)

    def test_huge_size_fails_fast(self, runtime):
        checks = CheckLibrary(runtime, WrapperState())
        region = runtime.space.map_region(64)
        assert not checks.check(R.RW_ARRAY(2**40), region.base)
        assert checks.probe_bytes < 100
