"""Property-based invariant: the semi-auto wrapper NEVER lets a call
crash, for arbitrary combinations of Ballista pool values.

This is the paper's headline claim, checked adversarially with
hypothesis rather than only on the fixed Ballista enumeration.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ballista.pools import pool_for
from repro.cdecl import DeclarationParser, typedef_table
from repro.core import HealersPipeline
from repro.libc.catalog import BY_NAME
from repro.libc.runtime import standard_runtime
from repro.wrapper import WrapperLibrary

FUNCTIONS = ("asctime", "strcpy", "strlen", "fclose", "fgets", "closedir",
             "toupper", "memcpy", "fseek", "strtol")


@pytest.fixture(scope="module")
def wrapped():
    hardened = HealersPipeline(functions=list(FUNCTIONS)).run()
    return WrapperLibrary(hardened.semi_auto_declarations)


_parser = DeclarationParser(typedef_table())
_pools = {}
for _name in FUNCTIONS:
    _proto = _parser.parse_prototype(BY_NAME[_name].prototype)
    _pools[_name] = [
        pool_for(p, _parser.resolve(p.ctype), p.ctype)
        for p in _proto.ftype.parameters
    ]


@st.composite
def _calls(draw):
    name = draw(st.sampled_from(FUNCTIONS))
    choices = [draw(st.integers(0, len(pool) - 1)) for pool in _pools[name]]
    return name, choices


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(_calls())
def test_semi_auto_wrapper_never_crashes(wrapped, call):
    name, choices = call
    runtime = standard_runtime()
    wrapped.state.file_table.clear()
    wrapped.state.dir_table.clear()
    values = []
    for pool, choice in zip(_pools[name], choices):
        pool_value = pool[choice]
        value = pool_value.build(runtime)
        values.append(value)
        if pool_value.seed == "file":
            wrapped.state.seed_file(value)
        elif pool_value.seed == "dir":
            wrapped.state.seed_dir(value)
    outcome = wrapped.call(name, values, runtime)
    assert not outcome.robustness_failure, (
        f"{name}({', '.join(pool[c].label for pool, c in zip(_pools[name], choices))})"
        f" -> {outcome.describe()}"
    )


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    st.sampled_from(("asctime", "strlen", "toupper")),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
)
def test_wrapper_survives_arbitrary_scalar_values(wrapped, name, raw_value):
    """Even completely random 64-bit argument values never crash the
    wrapped single-argument functions."""
    runtime = standard_runtime()
    outcome = wrapped.call(name, [raw_value], runtime)
    assert not outcome.robustness_failure


@st.composite
def _benign_calls(draw):
    name = draw(st.sampled_from(FUNCTIONS))
    choices = []
    for pool in _pools[name]:
        benign = [i for i, v in enumerate(pool) if not v.exceptional]
        choices.append(draw(st.sampled_from(benign)))
    return name, choices


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(_benign_calls())
def test_wrapper_is_transparent_for_valid_calls(wrapped, call):
    """Differential test of the paper's design goal: "such a design
    prevents correct programs from being penalized by unnecessary
    checks" — a wrapped call with valid arguments must return exactly
    what the unwrapped call returns.

    Forked runtimes lay out memory identically, so even returned
    pointers must agree bit for bit.
    """
    from repro.sandbox import Sandbox

    name, choices = call
    base = standard_runtime()

    def build(runtime):
        values = []
        for pool, choice in zip(_pools[name], choices):
            values.append(pool[choice].build(runtime))
        return values

    raw_runtime = base.fork()
    raw_args = build(raw_runtime)
    raw = Sandbox().call(BY_NAME[name].model, raw_args, raw_runtime)

    wrapped.state.file_table.clear()
    wrapped.state.dir_table.clear()
    wrapped_runtime = base.fork()
    wrapped_args = build(wrapped_runtime)
    for pool, choice, value in zip(_pools[name], choices, wrapped_args):
        if pool[choice].seed == "file":
            wrapped.state.seed_file(value)
        elif pool[choice].seed == "dir":
            wrapped.state.seed_dir(value)
    protected = wrapped.call(name, wrapped_args, wrapped_runtime)

    assert raw_args == wrapped_args  # deterministic fork layout
    assert not protected.robustness_failure

    # Transparency is promised for calls that are valid under
    # *worst-case* semantics: the relational checks deliberately
    # enforce the largest access the call could make (fgets may read
    # fewer than n bytes, but the check demands capacity for n — a
    # robust type "might contain values for which the function
    # crashes", and symmetrically may reject values that happen not
    # to).  For worst-case-valid calls the wrapper must be invisible.
    from repro.wrapper import CheckLibrary, WrapperState, relational_violation

    checks = CheckLibrary(raw_runtime, WrapperState())
    worst_case_valid = relational_violation(name, raw_args, checks) is None
    if raw.returned and worst_case_valid:
        assert protected.status == raw.status
        assert protected.return_value == raw.return_value
        assert protected.errno_was_set == raw.errno_was_set
