"""Tests for the wrapper library: policies, relational checks,
state tracking (sections 2, 5)."""

import pytest

from repro.declarations import apply_manual_edits, declaration_from_report
from repro.injector import inject_function
from repro.libc import standard_runtime
from repro.libc.errno_codes import EINVAL
from repro.memory import INVALID_POINTER, NULL, Protection
from repro.sandbox import CallStatus
from repro.wrapper import BUFFER_PLANS, WrapperLibrary, WrapperPolicy


@pytest.fixture(scope="module")
def declarations():
    names = ("asctime", "strcpy", "strlen", "opendir", "readdir", "closedir",
             "fopen", "fclose", "abs", "strtok", "fgets")
    return {name: declaration_from_report(inject_function(name)) for name in names}


@pytest.fixture(scope="module")
def semi_declarations(declarations):
    return {name: apply_manual_edits(d) for name, d in declarations.items()}


@pytest.fixture()
def runtime():
    return standard_runtime()


class TestRobustPolicy:
    def test_rejection_returns_declared_error_value(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        out = wrapper.call("asctime", [INVALID_POINTER], runtime)
        assert out.status is CallStatus.RETURNED
        assert out.return_value == 0
        assert out.errno == EINVAL

    def test_valid_arguments_forwarded(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        tm = runtime.space.map_region(44).base
        out = wrapper.call("asctime", [tm], runtime)
        assert out.returned and out.return_value != NULL

    def test_safe_functions_not_checked(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        wrapper.call("abs", [-5], runtime)
        assert wrapper.stats.checks == 0
        assert wrapper.stats.forwarded == 1

    def test_wrap_safe_flag_forces_checks(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations, wrap_safe=True)
        wrapper.call("abs", [-5], runtime)
        assert wrapper.stats.checks > 0

    def test_undeclared_function_forwarded(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        out = wrapper.call("rand", [], runtime)
        assert out.returned

    def test_violation_statistics(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        wrapper.call("asctime", [NULL], runtime)  # NULL allowed (R_ARRAY_NULL)
        wrapper.call("asctime", [INVALID_POINTER], runtime)
        assert wrapper.stats.violations == 1
        assert wrapper.stats.per_function["asctime"] == 2


class TestRelationalChecks:
    def test_strcpy_heap_overflow_blocked(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        dst = runtime.heap.malloc(4)
        src = runtime.space.alloc_cstring("much longer than four").base
        out = wrapper.call("strcpy", [dst, src], runtime)
        assert out.returned and out.errno == EINVAL

    def test_strcpy_exact_fit_allowed(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        dst = runtime.heap.malloc(6)
        src = runtime.space.alloc_cstring("hello").base
        out = wrapper.call("strcpy", [dst, src], runtime)
        assert out.return_value == dst
        assert runtime.space.read_cstring(dst) == b"hello"

    def test_fgets_buffer_capacity_enforced(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations)
        fp = wrapper.call(
            "fopen",
            [runtime.space.alloc_cstring("/tmp/input.txt").base,
             runtime.space.alloc_cstring("r").base],
            runtime,
        ).return_value
        small = runtime.heap.malloc(8)
        out = wrapper.call("fgets", [small, 100, fp], runtime)
        assert out.returned and out.errno_was_set
        out = wrapper.call("fgets", [small, 8, fp], runtime)
        assert out.return_value == small

    def test_relational_disabled_lets_overflow_crash(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations, relational=False)
        dst = runtime.heap.malloc(4)
        src = runtime.space.alloc_cstring("much longer than four").base
        out = wrapper.call("strcpy", [dst, src], runtime)
        assert out.crashed  # W_ARRAY[1] alone cannot stop it

    def test_every_plan_references_valid_arguments(self):
        from repro.cdecl import DeclarationParser, typedef_table
        from repro.libc.catalog import BY_NAME

        parser = DeclarationParser(typedef_table())
        for name, plans in BUFFER_PLANS.items():
            arity = parser.parse_prototype(BY_NAME[name].prototype).ftype.arity
            for plan in plans:
                assert plan.buffer_index < arity, name


class TestStateTracking:
    def test_dir_lifecycle_through_wrapper(self, semi_declarations, runtime):
        wrapper = WrapperLibrary(semi_declarations)
        path = runtime.space.alloc_cstring("/tmp").base
        dirp = wrapper.call("opendir", [path], runtime).return_value
        assert dirp in wrapper.state.dir_table
        out = wrapper.call("readdir", [dirp], runtime)
        assert out.returned and out.return_value != NULL
        assert wrapper.call("closedir", [dirp], runtime).return_value == 0
        assert dirp not in wrapper.state.dir_table

    def test_closedir_rejects_untracked_pointer(self, semi_declarations, runtime):
        """The section 6 manual edit: closedir's argument must come
        from opendir."""
        wrapper = WrapperLibrary(semi_declarations)
        fake = runtime.space.map_region(72).base
        out = wrapper.call("closedir", [fake], runtime)
        assert out.returned and out.errno_was_set

    def test_double_closedir_rejected(self, semi_declarations, runtime):
        wrapper = WrapperLibrary(semi_declarations)
        path = runtime.space.alloc_cstring("/tmp").base
        dirp = wrapper.call("opendir", [path], runtime).return_value
        assert wrapper.call("closedir", [dirp], runtime).return_value == 0
        out = wrapper.call("closedir", [dirp], runtime)
        assert out.returned and out.errno_was_set  # no crash, no double free

    def test_corrupt_file_rejected_only_with_tracking(self, declarations,
                                                      semi_declarations, runtime):
        from repro.libc import fileio

        args = [runtime.space.alloc_cstring("/tmp/input.txt").base,
                runtime.space.alloc_cstring("r").base]
        auto = WrapperLibrary(declarations)
        fp = auto.call("fopen", list(args), runtime).return_value
        runtime.space.store_u64(fp + fileio.OFF_BUF, 0xBAD0BAD00000)
        # Full-auto: fileno/fstat passes, the crash goes through.
        assert auto.call("fclose", [fp], runtime).crashed

        semi = WrapperLibrary(semi_declarations)
        fp2 = semi.call("fopen", list(args), runtime).return_value
        runtime.space.store_u64(fp2 + fileio.OFF_BUF, 0xBAD0BAD00000)
        semi.state.file_table.discard(fp2)  # "not opened through us"
        out = semi.call("fclose", [fp2], runtime)
        assert out.returned and out.errno_was_set

    def test_strtok_state_assertion(self, semi_declarations, runtime):
        wrapper = WrapperLibrary(semi_declarations)
        delim = runtime.space.alloc_cstring(",").base
        out = wrapper.call("strtok", [NULL, delim], runtime)
        assert out.returned and out.errno_was_set  # no saved state
        s = runtime.space.alloc_cstring("a,b").base
        first = wrapper.call("strtok", [s, delim], runtime)
        assert runtime.space.read_cstring(first.return_value) == b"a"
        second = wrapper.call("strtok", [NULL, delim], runtime)
        assert runtime.space.read_cstring(second.return_value) == b"b"


class TestPolicies:
    def test_debug_policy_aborts_on_violation(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations, policy=WrapperPolicy.DEBUG)
        out = wrapper.call("asctime", [INVALID_POINTER], runtime)
        assert out.status is CallStatus.ABORTED
        assert "asctime" in out.detail

    def test_logging_policy_records_violations(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations, policy=WrapperPolicy.LOGGING)
        wrapper.call("asctime", [INVALID_POINTER], runtime)
        wrapper.call("strlen", [NULL], runtime)
        assert len(wrapper.state.log) == 2
        assert any("asctime" in line for line in wrapper.state.log)

    def test_minimal_policy_blocks_wild_pointers_only(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations, policy=WrapperPolicy.MINIMAL)
        out = wrapper.call("asctime", [INVALID_POINTER], runtime)
        assert out.returned and out.errno_was_set
        # Content-level problems pass through under MINIMAL.
        small = runtime.space.map_region(20).base
        assert wrapper.call("asctime", [small], runtime).crashed

    def test_measure_policy_never_checks(self, declarations, runtime):
        wrapper = WrapperLibrary(declarations, policy=WrapperPolicy.MEASURE)
        out = wrapper.call("strlen", [NULL], runtime)
        assert out.crashed  # forwarded unchecked
        assert wrapper.stats.checks == 0
        assert wrapper.stats.calls == 1
