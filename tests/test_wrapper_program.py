"""PR 9: compiled CheckPrograms vs the interpreted CheckLibrary.

The contract under test: compiling a declaration into a
:class:`~repro.wrapper.program.CheckProgram` changes *cost*, never
*decisions*.  The golden sweep drives both checker implementations
through the full 86-function Ballista catalog under every
``CheckConfig`` ablation and asserts bit-identical outcomes — status,
return value, errno, detail — plus identical check accounting.
"""

import dataclasses

import pytest

from repro.ballista.harness import BallistaHarness
from repro.libc.catalog import BY_NAME
from repro.libc.errno_codes import EINVAL
from repro.libc.runtime import standard_runtime
from repro.memory import Protection, SegmentationFault
from repro.sandbox import CallStatus
from repro.wrapper import (
    CheckConfig,
    WrapperLibrary,
    WrapperPolicy,
    WrapperState,
    compile_program,
    program_for,
)
from repro.wrapper.program import ProgramContext

#: Every CheckConfig ablation the benches exercise.
CONFIGS = {
    "default": CheckConfig(),
    "stateless": CheckConfig(stateful=False),
    "exhaustive-probe": CheckConfig(page_probe=False),
    "page-granular": CheckConfig(page_granularity=True),
}

#: Per-function cap for the golden sweeps: enough combos to hit every
#: pool value class (every test carries >= 1 exceptional value) while
#: keeping 86 functions x 2 wrappers x N configs inside the tier-1
#: time budget.
GOLDEN_CAP = 8


def _run_one(test, wrapper, base):
    """Mirror of BallistaHarness._execute_test for one wrapper.

    Returns a comparable outcome key.  Under the page-granular
    ablation the checker itself can fault while inspecting a FILE
    struct whose page probe passed (shared code in both
    implementations); the escape must match bit-for-bit too, so it is
    captured as part of the key rather than crashing the sweep.
    """
    runtime = base.fork()
    wrapper.state.file_table.clear()
    wrapper.state.dir_table.clear()
    values = []
    for pool_value in test.values:
        value = pool_value.build(runtime)
        values.append(value)
        if pool_value.seed == "file":
            wrapper.state.seed_file(value)
        elif pool_value.seed == "dir":
            wrapper.state.seed_dir(value)
    try:
        outcome = wrapper.call(test.function, values, runtime)
    except SegmentationFault as fault:
        return ("check-fault", str(fault), None, "")
    return (outcome.status, outcome.return_value, outcome.errno, outcome.detail)


def _assert_golden(declarations, policy, config, cap=GOLDEN_CAP):
    harness = BallistaHarness(test_cap=cap)
    interpreted = WrapperLibrary(declarations, policy, config, compiled=False)
    compiled = WrapperLibrary(declarations, policy, config, compiled=True)
    base_interpreted = standard_runtime()
    base_compiled = standard_runtime()
    rejections = 0
    for test in harness.tests():
        golden = _run_one(test, interpreted, base_interpreted)
        candidate = _run_one(test, compiled, base_compiled)
        assert golden == candidate, (
            f"{test.label} diverged under {policy.value}"
        )
        rejections += 1 if interpreted.stats.violations else 0
    assert interpreted.stats.checks == compiled.stats.checks
    assert interpreted.stats.violations == compiled.stats.violations
    assert interpreted.stats.calls == compiled.stats.calls
    # The sweep must actually exercise the reject path to mean anything.
    assert compiled.stats.violations > 0
    return compiled


class TestGoldenEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_robust_all_configs(self, declarations86, config_name):
        _assert_golden(
            declarations86, WrapperPolicy.ROBUST, CONFIGS[config_name]
        )

    def test_minimal_policy(self, declarations86):
        _assert_golden(declarations86, WrapperPolicy.MINIMAL, CheckConfig())

    def test_debug_policy_details_match(self, declarations86):
        # DEBUG aborts carry the violation text in outcome.detail, so
        # this config proves the compiled violation strings are
        # byte-identical, not just the accept/reject bit.
        wrapper = _assert_golden(
            declarations86, WrapperPolicy.DEBUG, CheckConfig()
        )
        assert wrapper.stats.violations > 0

    def test_scenario_unsafe_functions_keep_checks(self, declarations86):
        # A function the argument sweep found safe but a fault model
        # condemned (unsafe_scenarios) is still wrapped; compiled and
        # interpreted must agree on that gate and its decisions.
        declaration = dataclasses.replace(
            declarations86["strcpy"],
            attribute="safe",
            unsafe_scenarios=("resource:malloc-null",),
        )
        assert not declaration.unsafe and declaration.scenario_unsafe
        declarations = {"strcpy": declaration}
        runtime = standard_runtime()
        dst = runtime.space.map_region(16).base
        src = runtime.space.alloc_cstring(b"x" * 64).base
        for compiled in (False, True):
            wrapper = WrapperLibrary(declarations, compiled=compiled)
            outcome = wrapper.call("strcpy", [dst, src], runtime.fork())
            assert outcome.status is CallStatus.RETURNED
            assert outcome.errno == EINVAL
            assert wrapper.stats.violations == 1

    def test_truncated_argument_lists_match(self, declarations86):
        # zip semantics: declared arguments beyond the args actually
        # passed are silently skipped by the interpreter's zip; the
        # compiled per-argument steps carry an arity bound for parity.
        runtime = standard_runtime()
        interpreted = WrapperLibrary(declarations86, compiled=False)
        compiled = WrapperLibrary(declarations86, compiled=True)

        def key(wrapper, name, args):
            # Relational plans legitimately escape with IndexError on
            # truncated argument lists (shared code); the escape has
            # to match too.
            try:
                return ("ok", wrapper.validate(name, args, runtime))
            except Exception as exc:  # noqa: BLE001 - parity capture
                return ("raise", type(exc).__name__, str(exc))

        for name in ("strcpy", "memcpy", "snprintf", "strlen"):
            args = [0]  # fewer args than the declared arity
            assert key(interpreted, name, args) == key(compiled, name, args), name
        assert interpreted.stats.checks == compiled.stats.checks


class TestProgramSharing:
    def test_same_shape_prototypes_share_one_program(self, declarations86):
        config = CheckConfig()
        program_isalpha, _ = program_for(
            declarations86["isalpha"], config, minimal=False, relational=True
        )
        program_isdigit, shared = program_for(
            declarations86["isdigit"], config, minimal=False, relational=True
        )
        # Same shape (one CHAR_RANGE argument, no assertions, no
        # relational plans) -> the identical program object.
        assert program_isdigit is program_isalpha
        assert shared is True

    def test_relational_plans_key_the_program(self, declarations86):
        config = CheckConfig()
        program_strcpy, _ = program_for(
            declarations86["strcpy"], config, minimal=False, relational=True
        )
        program_strcat, _ = program_for(
            declarations86["strcat"], config, minimal=False, relational=True
        )
        # strcpy and strcat share an argument shape but have different
        # BUFFER_PLANS entries; sharing them would cross-wire bounds.
        assert program_strcpy is not program_strcat

    def test_digest_is_stable_and_config_sensitive(self, declarations86):
        declaration = declarations86["strlen"]
        one = compile_program(
            declaration, CheckConfig(), minimal=False, relational=True
        )
        two = compile_program(
            declaration, CheckConfig(), minimal=False, relational=True
        )
        ablated = compile_program(
            declaration, CheckConfig(stateful=False), minimal=False,
            relational=True,
        )
        assert one.digest == two.digest
        assert one.digest != ablated.digest

    def test_wrapper_counts_program_economics(self, declarations86):
        wrapper = WrapperLibrary(declarations86, compiled=True)
        runtime = standard_runtime()
        pointer = runtime.space.alloc_cstring(b"hi").base
        wrapper.call("strlen", [pointer], runtime)
        wrapper.call("strlen", [pointer], runtime)
        assert wrapper.stats.programs_compiled + wrapper.stats.program_shares == 1


class TestRevalidationCache:
    def _context(self, runtime):
        ctx = ProgramContext(WrapperState(), CheckConfig())
        ctx.bind(runtime)
        return ctx

    def test_repeat_validation_hits(self):
        runtime = standard_runtime()
        pointer = runtime.heap.malloc(64)
        ctx = self._context(runtime)
        assert ctx.memory_ok(pointer, 64, True, True)
        assert ctx.memory_ok(pointer, 64, True, True)
        assert ctx.revalidate_hits == 1
        assert ctx.revalidate_misses == 1

    def test_free_invalidates(self):
        runtime = standard_runtime()
        pointer = runtime.heap.malloc(64)
        ctx = self._context(runtime)
        assert ctx.memory_ok(pointer, 64, True, True)
        runtime.heap.free(pointer)
        ctx.bind(runtime)  # generation changed -> cache cleared
        assert not ctx.memory_ok(pointer, 64, True, True)

    def test_protect_invalidates(self):
        runtime = standard_runtime()
        region = runtime.space.map_region(64)
        ctx = self._context(runtime)
        assert ctx.memory_ok(region.base, 64, False, True)
        runtime.space.protect(region, Protection.READ)
        ctx.bind(runtime)
        assert not ctx.memory_ok(region.base, 64, False, True)

    def test_unmap_invalidates(self):
        runtime = standard_runtime()
        region = runtime.space.map_region(64)
        ctx = self._context(runtime)
        assert ctx.memory_ok(region.base, 64, True, False)
        runtime.space.unmap(region)
        ctx.bind(runtime)
        assert not ctx.memory_ok(region.base, 64, True, False)

    def test_runtime_switch_invalidates(self):
        runtime = standard_runtime()
        pointer = runtime.heap.malloc(32)
        ctx = self._context(runtime)
        assert ctx.memory_ok(pointer, 32, True, False)
        fork = runtime.fork()
        fork.heap.free(pointer)
        ctx.bind(fork)  # different space object -> cache dropped
        assert not ctx.memory_ok(pointer, 32, True, False)

    def test_cache_cap_bounds_memory(self):
        runtime = standard_runtime()
        ctx = ProgramContext(WrapperState(), CheckConfig(), cache_cap=4)
        ctx.bind(runtime)
        pointer = runtime.heap.malloc(4096)
        for offset in range(16):
            ctx.memory_ok(pointer + offset, 1, True, False)
        assert len(ctx._mem_cache) <= 4

    def test_wrapper_hits_across_calls(self, declarations86):
        wrapper = WrapperLibrary(declarations86, compiled=True)
        runtime = standard_runtime()
        source = runtime.space.alloc_cstring(b"hello").base
        buffer = runtime.space.map_region(64).base
        # memset validates the same (pointer, size) window every call;
        # the mapping generation is untouched between calls.
        wrapper.call("memset", [buffer, 0, 64], runtime)
        wrapper.call("memset", [buffer, 0, 64], runtime)
        assert wrapper.stats.revalidate_hits > 0
        assert source  # keep the string alive for symmetry


class TestBoundedViolationLog:
    def test_ring_drops_oldest(self):
        state = WrapperState(max_log=3)
        for index in range(5):
            state.record_violation("strcpy", f"violation {index}")
        assert state.log == [
            "strcpy: violation 2",
            "strcpy: violation 3",
            "strcpy: violation 4",
        ]
        assert state.log_dropped == 2

    def test_zero_cap_is_unbounded(self):
        state = WrapperState(max_log=0)
        for index in range(2000):
            state.record_violation("f", str(index))
        assert len(state.log) == 2000
        assert state.log_dropped == 0

    def test_wrapper_threads_the_cap(self, declarations86):
        wrapper = WrapperLibrary(
            declarations86, WrapperPolicy.LOGGING, max_log_entries=2
        )
        runtime = standard_runtime()
        for _ in range(5):
            wrapper.call("strlen", [0], runtime)
        assert len(wrapper.state.log) == 2
        assert wrapper.state.log_dropped == 3


class TestBatchEntryPoints:
    def test_call_many_matches_singles(self, declarations86):
        source = standard_runtime()
        calls = []
        runtime_batch = source.fork()
        runtime_single = source.fork()
        text = runtime_batch.space.alloc_cstring(b"abc").base
        text_single = runtime_single.space.alloc_cstring(b"abc").base
        batch_wrapper = WrapperLibrary(declarations86)
        single_wrapper = WrapperLibrary(declarations86)
        batched = batch_wrapper.call_many(
            [("strlen", [text]), ("strlen", [0]), ("toupper", [97])],
            runtime_batch,
        )
        singles = [
            single_wrapper.call("strlen", [text_single], runtime_single),
            single_wrapper.call("strlen", [0], runtime_single),
            single_wrapper.call("toupper", [97], runtime_single),
        ]
        for got, want in zip(batched, singles):
            assert (got.status, got.return_value, got.errno) == (
                want.status,
                want.return_value,
                want.errno,
            )
        assert batch_wrapper.stats.batched_calls == 3
        assert single_wrapper.stats.batched_calls == 0

    def test_validate_reports_violation_without_executing(self, declarations86):
        wrapper = WrapperLibrary(declarations86)
        runtime = standard_runtime()
        live = runtime.space.alloc_cstring(b"ok").base
        assert wrapper.validate("strlen", [live], runtime) is None
        violation = wrapper.validate("strlen", [0], runtime)
        assert violation is not None and "arg 0" in violation
        # Nothing was forwarded: validate is check-only.
        assert wrapper.stats.forwarded == 0

    def test_validate_skips_safe_functions(self, declarations86):
        wrapper = WrapperLibrary(declarations86)
        runtime = standard_runtime()
        safe = [
            name
            for name, declaration in declarations86.items()
            if not declaration.unsafe and not declaration.scenario_unsafe
        ]
        if safe:  # forwarded-without-checks is a pass by definition
            assert wrapper.validate(safe[0], [0], runtime) is None

    def test_validate_many_orders_results(self, declarations86):
        wrapper = WrapperLibrary(declarations86)
        runtime = standard_runtime()
        live = runtime.space.alloc_cstring(b"ok").base
        results = wrapper.validate_many(
            [("strlen", [0]), ("strlen", [live])], runtime
        )
        assert results[0] is not None
        assert results[1] is None


class TestStepCosts:
    """Per-step-class cost counters (``WrapperStats.step_costs``)."""

    def _exercise(self, declarations86, **kwargs):
        wrapper = WrapperLibrary(declarations86, compiled=True, **kwargs)
        runtime = standard_runtime()
        source = runtime.space.alloc_cstring(b"hello").base
        buffer = runtime.space.map_region(64).base
        wrapper.call("strcpy", [buffer, source], runtime)
        wrapper.call("memset", [buffer, 0, 64], runtime)
        wrapper.call("strlen", [source], runtime)
        return wrapper

    def test_disabled_by_default_and_untouched(self, declarations86):
        wrapper = self._exercise(declarations86)
        assert wrapper.collect_step_costs is False
        assert wrapper.stats.step_costs == {}

    def test_collects_per_class_counts(self, declarations86):
        from repro.wrapper.program import STEP_KINDS

        wrapper = self._exercise(declarations86, collect_step_costs=True)
        costs = wrapper.stats.step_costs
        assert costs, "no step costs collected"
        assert set(costs) <= set(STEP_KINDS)
        assert all(
            isinstance(count, int) and count > 0 for count in costs.values()
        )

    def test_collection_does_not_change_decisions(self, declarations86):
        plain = self._exercise(declarations86)
        counted = self._exercise(declarations86, collect_step_costs=True)
        assert counted.stats.checks == plain.stats.checks
        assert counted.stats.violations == plain.stats.violations
        assert counted.stats.forwarded == plain.stats.forwarded

    def test_exported_through_telemetry(self, declarations86):
        from repro.obs import Telemetry
        from repro.obs.metrics import render_prometheus

        telemetry = Telemetry()
        wrapper = self._exercise(
            declarations86, collect_step_costs=True, telemetry=telemetry
        )
        assert wrapper.stats.step_costs
        rendered = render_prometheus(telemetry.registry)
        assert "wrapper_step_cost" in rendered
