"""Unit tests for wrapper state tracking and small helpers."""

import pytest

from repro.libc.runtime import standard_runtime
from repro.memory import NULL
from repro.sandbox.outcome import CallOutcome, CallStatus
from repro.typelattice.instances import TypeInstance, parse_rendered
from repro.wrapper import WrapperState


def returned(value):
    return CallOutcome(CallStatus.RETURNED, return_value=value)


class TestObserveCall:
    def test_opendir_registers_and_closedir_unregisters(self):
        state = WrapperState()
        state.observe_call("opendir", (0x100,), returned(0x5000))
        assert state.assert_tracked_dir(0x5000)
        state.observe_call("closedir", (0x5000,), returned(0))
        assert not state.assert_tracked_dir(0x5000)

    def test_failed_opendir_not_registered(self):
        state = WrapperState()
        state.observe_call("opendir", (0x100,), returned(NULL))
        crash = CallOutcome(CallStatus.CRASHED)
        state.observe_call("opendir", (0x100,), crash)
        assert not state.dir_table

    def test_fopen_family_registers_files(self):
        state = WrapperState()
        for offset, name in enumerate(("fopen", "fdopen", "tmpfile")):
            state.observe_call(name, (), returned(0x6000 + 0x10 * offset))
        assert len(state.file_table) == 3

    def test_fclose_unregisters(self):
        state = WrapperState()
        state.observe_call("fopen", (), returned(0x6000))
        state.observe_call("fclose", (0x6000,), returned(0))
        assert not state.assert_tracked_file(0x6000)

    def test_freopen_keeps_existing_stream(self):
        state = WrapperState()
        state.seed_file(0x7000)
        state.observe_call("freopen", (0x1, 0x2, 0x7000), returned(0x7000))
        assert state.assert_tracked_file(0x7000)

    def test_freopen_registers_new_stream(self):
        state = WrapperState()
        state.observe_call("freopen", (0x1, 0x2, 0x9999), returned(0x8000))
        assert state.assert_tracked_file(0x8000)


class TestAssertions:
    def test_tracked_file_null_policy(self):
        state = WrapperState()
        assert state.assert_tracked_file(NULL, allow_null=True)
        assert not state.assert_tracked_file(NULL, allow_null=False)

    def test_strtok_state(self):
        state = WrapperState()
        runtime = standard_runtime()
        assert not state.assert_strtok_state(runtime, NULL)
        runtime.strtok_state = 0x1234
        assert state.assert_strtok_state(runtime, NULL)
        assert state.assert_strtok_state(runtime, 0x5678)

    def test_violation_log(self):
        state = WrapperState()
        state.record_violation("strcpy", "dst too small")
        assert state.log == ["strcpy: dst too small"]


class TestTypeInstanceHelpers:
    def test_parse_rendered_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_rendered("not a type!!")
        with pytest.raises(ValueError):
            parse_rendered("R_ARRAY[abc]")

    def test_with_param(self):
        base = TypeInstance("R_ARRAY", 10)
        bumped = base.with_param(44)
        assert bumped.param == 44 and bumped.name == "R_ARRAY"
        assert base.param == 10

    def test_str_and_render_agree(self):
        instance = TypeInstance("RW_ARRAY_NULL", 72)
        assert str(instance) == instance.render() == "RW_ARRAY_NULL[72]"
